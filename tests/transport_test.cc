// The socket transport and its epoll connection layer: framing units, TCP
// and Unix-domain round trips (on both the epoll and poll backends), msize
// clamping, hostile-frame rejection, and the lifecycle regressions the wire
// makes reachable — idle reaping that really clunks fids and frees the
// session, disconnect with requests mid-dispatch, slow-reader backpressure
// that stalls and then recovers, and the re-pinned /mnt/help/stats format
// with the net.* block.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"
#include "src/fs/vfs.h"

namespace help {
namespace {

std::string SockPath(const char* name) {
  // Unique per test process; relative so it stays inside the build tree (and
  // under sun_path's 108-byte cap regardless of where the tree lives).
  return StrFormat("%s.%d.sock", name, getpid());
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// Raw-socket protocol helpers for the pipelined/hostile tests, where
// NinepClient's one-at-a-time RPC discipline is exactly what we must break.
std::string RecvFrame(int fd) {
  auto hdr = ReadFull(fd, 4);
  if (!hdr.ok()) {
    return {};
  }
  uint32_t size = static_cast<uint32_t>(static_cast<uint8_t>(hdr.value()[0])) |
                  static_cast<uint32_t>(static_cast<uint8_t>(hdr.value()[1])) << 8 |
                  static_cast<uint32_t>(static_cast<uint8_t>(hdr.value()[2])) << 16 |
                  static_cast<uint32_t>(static_cast<uint8_t>(hdr.value()[3])) << 24;
  if (size < kMinFrameSize || size > kMaxFrameSize) {
    return {};
  }
  auto rest = ReadFull(fd, size - 4);
  if (!rest.ok()) {
    return {};
  }
  return hdr.take() + rest.take();
}

Result<Fcall> RawRpc(int fd, const Fcall& t) {
  Status w = WriteFull(fd, EncodeFcall(t));
  if (!w.ok()) {
    return w;
  }
  std::string reply = RecvFrame(fd);
  if (reply.empty()) {
    return Status::Error("connection closed");
  }
  return DecodeFcall(reply);
}

// version + attach on a raw fd; returns false on any protocol error.
bool RawHandshake(int fd, uint32_t msize = kDefaultMsize) {
  Fcall tv;
  tv.type = MsgType::kTversion;
  tv.tag = 1;
  tv.msize = msize;
  tv.version = "9P.help";
  auto rv = RawRpc(fd, tv);
  if (!rv.ok() || rv.value().type != MsgType::kRversion) {
    return false;
  }
  Fcall ta;
  ta.type = MsgType::kTattach;
  ta.tag = 1;
  ta.fid = 0;
  ta.uname = "raw";
  auto ra = RawRpc(fd, ta);
  return ra.ok() && ra.value().type == MsgType::kRattach;
}

// Walks from fid 0 and opens read-only; returns the new fid or kNoFid.
uint32_t RawOpenRead(int fd, const std::vector<std::string>& names,
                     uint32_t newfid) {
  Fcall tw;
  tw.type = MsgType::kTwalk;
  tw.tag = 2;
  tw.fid = 0;
  tw.newfid = newfid;
  tw.wname = names;
  auto rw = RawRpc(fd, tw);
  if (!rw.ok() || rw.value().wqid.size() != names.size()) {
    return kNoFid;
  }
  Fcall to;
  to.type = MsgType::kTopen;
  to.tag = 2;
  to.fid = newfid;
  to.mode = kOread;
  auto ro = RawRpc(fd, to);
  return ro.ok() && ro.value().type == MsgType::kRopen ? newfid : kNoFid;
}

// --- Framing -----------------------------------------------------------------

TEST(FrameReader, ReassemblesDribbledAndCoalescedFrames) {
  Fcall t;
  t.type = MsgType::kTversion;
  t.tag = 1;
  t.msize = kDefaultMsize;
  t.version = "9P.help";
  std::string a = EncodeFcall(t);
  t.tag = 2;
  std::string b = EncodeFcall(t);

  // Byte-at-a-time: nothing pops until the last byte lands.
  FrameReader r;
  std::string frame;
  for (char& ch : a) {
    EXPECT_EQ(r.Pop(&frame), FrameReader::Next::kNeedMore);
    r.Feed(std::string_view(&ch, 1));
  }
  ASSERT_EQ(r.Pop(&frame), FrameReader::Next::kFrame);
  EXPECT_EQ(frame, a);
  EXPECT_EQ(r.Pop(&frame), FrameReader::Next::kNeedMore);

  // Two frames in one feed pop in order.
  r.Feed(a + b);
  ASSERT_EQ(r.Pop(&frame), FrameReader::Next::kFrame);
  EXPECT_EQ(frame, a);
  ASSERT_EQ(r.Pop(&frame), FrameReader::Next::kFrame);
  EXPECT_EQ(frame, b);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameReader, PoisonsOnLyingSizeFields) {
  // A runt frame: size says 3, below the 7-byte minimum.
  FrameReader runt;
  runt.Feed(std::string("\x03\x00\x00\x00", 4));
  std::string frame;
  EXPECT_EQ(runt.Pop(&frame), FrameReader::Next::kError);
  EXPECT_TRUE(runt.poisoned());

  // An oversized frame: bigger than any negotiable msize.
  FrameReader big;
  big.Feed(std::string("\xFF\xFF\xFF\x7F", 4));
  EXPECT_EQ(big.Pop(&frame), FrameReader::Next::kError);
  // Poison is permanent: valid bytes after the lie never resynchronize.
  Fcall t;
  t.type = MsgType::kTversion;
  t.tag = 1;
  big.Feed(EncodeFcall(t));
  EXPECT_EQ(big.Pop(&frame), FrameReader::Next::kError);
}

// --- Round trips -------------------------------------------------------------

TEST(NinepListenerTest, UnixSocketRoundTrip) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  uint64_t accepts0 = srv.metrics().net_accepts();

  NinepListener lis(&srv);
  std::string path = SockPath("unix_rt");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok()) << tr.message();
  NinepClient client(tr.value()->AsTransport());
  ASSERT_TRUE(client.Connect("sock").ok());

  // Create a window over the wire, append, and read back — the full help
  // surface through a real socket.
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  ASSERT_TRUE(client.AppendFile(base + "/bodyapp", "over the wire\n").ok());
  auto body = client.ReadFile(base + "/body");
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value(), "over the wire\n");

  // The stats file serves the connection layer's own counters.
  auto stats = client.ReadFile("/mnt/help/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("\nnet_accepts "), std::string::npos) << stats.value();
  EXPECT_NE(stats.value().find("\nnet_active_conns "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_reaped "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_backpressure_stalls "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_bytes_in "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_bytes_out "), std::string::npos);

  EXPECT_EQ(srv.metrics().net_accepts(), accepts0 + 1);
  EXPECT_EQ(lis.active_conns(), 1u);
  lis.Stop();
  EXPECT_EQ(lis.active_conns(), 0u);
  EXPECT_EQ(srv.session_count(), 0u);
}

TEST(NinepListenerTest, TcpSocketRoundTrip) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepListener lis(&h.ninep());
  ASSERT_TRUE(lis.ListenTcp("127.0.0.1", 0).ok());
  ASSERT_NE(lis.port(), 0);
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectTcp("127.0.0.1", lis.port());
  ASSERT_TRUE(tr.ok()) << tr.message();
  NinepClient client(tr.value()->AsTransport());
  ASSERT_TRUE(client.Connect("tcp").ok());
  auto idx = client.ReadFile("/mnt/help/index");
  EXPECT_TRUE(idx.ok());
}

TEST(NinepListenerTest, PollFallbackRoundTrip) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepListener::Options lopt;
  lopt.poller = PollerKind::kPoll;
  NinepListener lis(&h.ninep(), lopt);
  std::string path = SockPath("poll_rt");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok()) << tr.message();
  NinepClient client(tr.value()->AsTransport());
  ASSERT_TRUE(client.Connect("poll").ok());
  auto idx = client.ReadFile("/mnt/help/index");
  EXPECT_TRUE(idx.ok());
}

// --- Protocol limits ---------------------------------------------------------

TEST(NinepListenerTest, MsizeIsClampedAndOversizedFramesHangUp) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  uint64_t ferr0 = srv.metrics().net_frame_errors();
  NinepListener lis(&srv);
  std::string path = SockPath("msize");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  // An absurd client msize negotiates down, never up.
  auto fd = DialUnix(path);
  ASSERT_TRUE(fd.ok());
  Fcall tv;
  tv.type = MsgType::kTversion;
  tv.tag = 1;
  tv.msize = 16 * 1024 * 1024;
  tv.version = "9P.help";
  auto rv = RawRpc(fd.value(), tv);
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(rv.value().msize, kDefaultMsize);
  close(fd.value());

  // A frame whose size field exceeds the cap closes the connection: there is
  // no resynchronizing a framed stream after a lying length.
  auto bad = DialUnix(path);
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(WriteFull(bad.value(), std::string("\x00\x00\x10\x00", 4)).ok());
  EXPECT_TRUE(RecvFrame(bad.value()).empty());  // EOF, not a reply
  close(bad.value());
  EXPECT_TRUE(WaitFor([&] {
    return srv.metrics().net_frame_errors() == ferr0 + 1 &&
           lis.active_conns() == 0;
  }));
}

// --- Lifecycle ---------------------------------------------------------------

// A synthetic file whose Clunk is observable, attached just for the reap
// test: proof that tearing a session down really runs handler clunks.
class ClunkProbeHandler : public FileHandler {
 public:
  explicit ClunkProbeHandler(std::atomic<int>* clunks) : clunks_(clunks) {}
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    return std::string(offset == 0 ? "probe\n" : "");
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return Status::Error("probe: read-only");
  }
  void Clunk(OpenFile& f) override { clunks_->fetch_add(1); }

 private:
  std::atomic<int>* clunks_;
};

TEST(NinepListenerTest, IdleReapClunksFidsAndFreesTheSession) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  std::atomic<int> clunks{0};
  ASSERT_TRUE(h.vfs()
                  .AttachHandler("/mnt/help/reapprobe",
                                 std::make_shared<ClunkProbeHandler>(&clunks))
                  .ok());
  uint64_t reaped0 = srv.metrics().net_reaped();

  NinepListener::Options lopt;
  lopt.idle_timeout_ms = 100;
  lopt.tick_ms = 10;
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("reap");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok());
  NinepClient client(tr.value()->AsTransport());
  ASSERT_TRUE(client.Connect("idler").ok());
  auto fid = client.WalkFid("/mnt/help/reapprobe");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(client.OpenFid(fid.value(), kOread).ok());
  EXPECT_EQ(srv.session_count(), 1u);
  EXPECT_EQ(clunks.load(), 0);

  // Go idle past the timeout: the listener must close the socket, tear down
  // the session, and clunk the still-open probe fid through its handler.
  ASSERT_TRUE(WaitFor([&] { return srv.metrics().net_reaped() == reaped0 + 1; }));
  ASSERT_TRUE(WaitFor([&] { return srv.session_count() == 0; }));
  EXPECT_EQ(clunks.load(), 1);
  EXPECT_EQ(lis.active_conns(), 0u);

  // The reaped connection is really dead: the next RPC surfaces an error
  // instead of hanging.
  EXPECT_FALSE(client.ReadFid(fid.value(), 0, 16).ok());
}

// reap_tick_ms decouples the reap scan from the loop tick: with a 10s loop
// tick — which without the option would also cap the scan's promptness via
// min(tick_ms, idle_timeout_ms) — a 10ms reap tick still collects an idle
// connection right after the timeout elapses.
TEST(NinepListenerTest, ShortReapTickReapsPromptlyDespiteLongLoopTick) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  uint64_t reaped0 = srv.metrics().net_reaped();

  NinepListener::Options lopt;
  lopt.idle_timeout_ms = 100;
  lopt.tick_ms = 10000;
  lopt.reap_tick_ms = 10;
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("reaptick");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok());
  NinepClient client(tr.value()->AsTransport());
  ASSERT_TRUE(client.Connect("idler").ok());
  EXPECT_EQ(srv.session_count(), 1u);

  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(
      WaitFor([&] { return srv.metrics().net_reaped() == reaped0 + 1; }));
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  // Prompt means a few reap ticks past the idle timeout — nowhere near the
  // 10s loop tick. Generous bound for loaded CI machines.
  EXPECT_LT(elapsed_ms, 2000);
  ASSERT_TRUE(WaitFor([&] { return srv.session_count() == 0; }));
  EXPECT_EQ(lis.active_conns(), 0u);
}

TEST(NinepListenerTest, DisconnectWithRequestsMidDispatchIsClean) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  NinepListener lis(&srv);
  std::string path = SockPath("middrop");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  // Seed a window with a body worth reading.
  {
    auto tr = SocketTransport::ConnectUnix(path);
    ASSERT_TRUE(tr.ok());
    NinepClient seeder(tr.value()->AsTransport());
    ASSERT_TRUE(seeder.Connect("seed").ok());
    auto ctl = seeder.ReadFile("/mnt/help/new/ctl");
    ASSERT_TRUE(ctl.ok());
    std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
    std::string blob(32 * 1024, 'x');
    ASSERT_TRUE(seeder.WriteFile(base + "/bodyapp", blob).ok());
  }

  // Several rounds: pipeline a burst of Treads and slam the socket shut with
  // requests still queued or mid-dispatch. The session must drain and die
  // without use-after-free (ASan/TSan builds are the other half of this
  // test), and the server must keep serving.
  for (int round = 0; round < 8; round++) {
    auto fd = DialUnix(path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(RawHandshake(fd.value()));
    uint32_t body = RawOpenRead(fd.value(), {"mnt", "help", "1", "body"}, 1);
    ASSERT_NE(body, kNoFid);
    std::string burst;
    for (int i = 0; i < 50; i++) {
      Fcall tr_;
      tr_.type = MsgType::kTread;
      tr_.tag = static_cast<uint16_t>(100 + i);
      tr_.fid = body;
      tr_.offset = 0;
      tr_.count = 32 * 1024;
      burst += EncodeFcall(tr_);
    }
    ASSERT_TRUE(WriteFull(fd.value(), burst).ok());
    close(fd.value());  // mid-burst hangup
  }
  ASSERT_TRUE(WaitFor([&] { return srv.session_count() == 0; }));

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok());
  NinepClient after(tr.value()->AsTransport());
  ASSERT_TRUE(after.Connect("after").ok());
  EXPECT_TRUE(after.ReadFile("/mnt/help/index").ok());
}

TEST(NinepListenerTest, BackpressureStallsSlowReaderAndRecovers) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  uint64_t stalls0 = srv.metrics().net_backpressure_stalls();

  NinepListener::Options lopt;
  lopt.max_outbox_bytes = 8 * 1024;  // tiny bound so one big reply stalls
  lopt.max_conn_workers = 1;  // strict in-order so the tag check below holds
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("bp");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  // A ~48KB body: each Rread is about 6x the outbox bound.
  std::string blob;
  for (int i = 0; i < 768; i++) {
    blob += StrFormat("line %05d of the backpressure body, padded out....\n", i);
  }
  {
    auto tr = SocketTransport::ConnectUnix(path);
    ASSERT_TRUE(tr.ok());
    NinepClient seeder(tr.value()->AsTransport());
    ASSERT_TRUE(seeder.Connect("seed").ok());
    auto ctl = seeder.ReadFile("/mnt/help/new/ctl");
    ASSERT_TRUE(ctl.ok());
    std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
    ASSERT_TRUE(seeder.WriteFile(base + "/bodyapp", blob).ok());
  }

  auto fd = DialUnix(path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(RawHandshake(fd.value()));
  uint32_t body = RawOpenRead(fd.value(), {"mnt", "help", "1", "body"}, 1);
  ASSERT_NE(body, kNoFid);

  // Pipeline 20 whole-body reads and read back NOTHING: ~1MB of replies must
  // squeeze through an 8KB outbox, so the worker must park the connection.
  constexpr int kReads = 20;
  std::string burst;
  for (int i = 0; i < kReads; i++) {
    Fcall t;
    t.type = MsgType::kTread;
    t.tag = static_cast<uint16_t>(200 + i);
    t.fid = body;
    t.offset = 0;
    t.count = kDefaultMsize;  // clamped to msize - kIoHeader by the server
    burst += EncodeFcall(t);
  }
  ASSERT_TRUE(WriteFull(fd.value(), burst).ok());
  ASSERT_TRUE(WaitFor([&] {
    return srv.metrics().net_backpressure_stalls() > stalls0;
  })) << "slow reader never stalled";

  // Now drain: every reply must arrive, in order, intact — the stall must
  // hand back exactly the bytes it parked, then the connection stays usable.
  for (int i = 0; i < kReads; i++) {
    std::string reply = RecvFrame(fd.value());
    ASSERT_FALSE(reply.empty()) << "reply " << i << " lost to backpressure";
    auto r = DecodeFcall(reply);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().type, MsgType::kRread) << r.value().ename;
    EXPECT_EQ(r.value().tag, 200 + i);
    EXPECT_EQ(r.value().data, blob);
  }
  Fcall ts;
  ts.type = MsgType::kTstat;
  ts.tag = 3;
  ts.fid = body;
  auto rs = RawRpc(fd.value(), ts);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().type, MsgType::kRstat);
  close(fd.value());
}

// --- PR 9: pipelined dispatch and zero-copy reads ----------------------------

class SlowReadHandler : public FileHandler {
 public:
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset > 0) {
      return std::string();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return std::string("slow\n");
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return Status::Error("read-only");
  }
};

class FastReadHandler : public FileHandler {
 public:
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    return offset > 0 ? std::string() : std::string("fast\n");
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return Status::Error("read-only");
  }
};

// The tentpole's ordering half: two Treads pipelined on ONE connection, the
// first against a handler that sleeps 100ms. Under the PR 9 scheduler the
// second read dispatches on another worker, so its reply overtakes the slow
// one — and ninep.ooo_completions records the overlap.
TEST(PipelinedDispatch, ReadsCompleteOutOfOrderWithinOneConnection) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  ASSERT_TRUE(
      h.vfs().AttachHandler("/mnt/help/slow9", std::make_shared<SlowReadHandler>()).ok());
  ASSERT_TRUE(
      h.vfs().AttachHandler("/mnt/help/fast9", std::make_shared<FastReadHandler>()).ok());
  uint64_t ooo0 = srv.metrics().ooo_completions();

  NinepListener lis(&srv);  // default two workers, no per-conn cap
  std::string path = SockPath("ooo");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto fd = DialUnix(path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(RawHandshake(fd.value()));
  uint32_t slow = RawOpenRead(fd.value(), {"mnt", "help", "slow9"}, 1);
  uint32_t fast = RawOpenRead(fd.value(), {"mnt", "help", "fast9"}, 2);
  ASSERT_NE(slow, kNoFid);
  ASSERT_NE(fast, kNoFid);

  Fcall t1;
  t1.type = MsgType::kTread;
  t1.tag = 10;
  t1.fid = slow;
  t1.offset = 0;
  t1.count = 128;
  Fcall t2 = t1;
  t2.tag = 11;
  t2.fid = fast;
  ASSERT_TRUE(WriteFull(fd.value(), EncodeFcall(t1) + EncodeFcall(t2)).ok());

  auto first = DecodeFcall(RecvFrame(fd.value()));
  auto second = DecodeFcall(RecvFrame(fd.value()));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().tag, 11) << "fast read did not overtake the slow one";
  EXPECT_EQ(first.value().data, "fast\n");
  EXPECT_EQ(second.value().tag, 10);
  EXPECT_EQ(second.value().data, "slow\n");
  EXPECT_GT(srv.metrics().ooo_completions(), ooo0);
  close(fd.value());
  lis.Stop();
  ::unlink(path.c_str());
}

// Satellite (b): with several requests in flight, a dead transport answers
// each RecvReply with a synthesized Rerror for the OLDEST outstanding tag —
// FIFO pairing, one reply per request, each carrying its own tag.
TEST(SocketTransportTest, SynthesizedRerrorsCarryInflightTagsFifo) {
  std::string path = SockPath("fifotag");
  auto lfd = help::ListenUnix(path);
  ASSERT_TRUE(lfd.ok());
  // Accept one connection and slam it shut without reading.
  std::thread acceptor([&] {
    int cfd = accept(lfd.value(), nullptr, nullptr);
    if (cfd >= 0) {
      close(cfd);
    }
  });
  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok());
  acceptor.join();

  Fcall t1;
  t1.type = MsgType::kTversion;
  t1.tag = 1;
  t1.msize = kDefaultMsize;
  t1.version = "9P.help";
  Fcall t2;
  t2.type = MsgType::kTstat;
  t2.tag = 2;
  t2.fid = 0;
  // Both sends are attempted before any receive: two requests in flight.
  // (Either send may "succeed" into a doomed socket buffer; that must not
  // change the reply pairing.)
  (void)tr.value()->Send(EncodeFcall(t1));
  (void)tr.value()->Send(EncodeFcall(t2));
  EXPECT_EQ(tr.value()->inflight(), 2u);

  auto r1 = DecodeFcall(tr.value()->RecvReply());
  auto r2 = DecodeFcall(tr.value()->RecvReply());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().type, MsgType::kRerror);
  EXPECT_EQ(r1.value().tag, 1) << r1.value().ename;
  EXPECT_EQ(r2.value().type, MsgType::kRerror);
  EXPECT_EQ(r2.value().tag, 2) << r2.value().ename;
  close(lfd.value());
  ::unlink(path.c_str());
}

// Satellite (a): the pipelined multi-tag read helper returns byte-exact
// results in issue order over a real socket, and the zero-copy accounting
// sees every body payload byte (ninep.bytes_zero_copy, per-conn copy, and
// writev-drained outboxes).
TEST(PipelinedDispatch, ReadFidPipelinedMatchesOracleAndCountsZeroCopy) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  uint64_t zc0 = srv.metrics().bytes_zero_copy();

  NinepListener lis(&srv);
  std::string path = SockPath("pipe");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok());
  NinepClient client(tr.value()->AsTransport());
  client.set_pipe_io(tr.value()->AsPipeIo());
  ASSERT_TRUE(client.Connect("pipe").ok());

  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  // Multi-byte runes so gathered windows straddle rune boundaries.
  std::string mirror;
  for (int i = 0; i < 200; i++) {
    mirror += StrFormat("ligne %03d — naïve 你好 😀 padding padding\n", i);
  }
  ASSERT_TRUE(client.WriteFile(base + "/bodyapp", mirror).ok());

  auto fid = client.WalkFid(base + "/body");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(client.OpenFid(fid.value(), kOread).ok());

  std::vector<NinepClient::ReadRange> ranges;
  uint64_t payload = 0;
  for (uint64_t off = 3; off + 1000 < mirror.size(); off += 997) {
    ranges.push_back({off, 1000});
    payload += 1000;
  }
  ranges.push_back({mirror.size() - 5, 4096});  // tail, short read
  payload += 5;
  ASSERT_GE(ranges.size(), 8u);

  auto got = client.ReadFidPipelined(fid.value(), ranges, /*window=*/6);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_EQ(got.value().size(), ranges.size());
  for (size_t i = 0; i < ranges.size(); i++) {
    EXPECT_EQ(got.value()[i],
              mirror.substr(ranges[i].offset, ranges[i].count))
        << "range " << i;
  }

  // Every body payload byte above arrived via the gather path.
  EXPECT_GE(srv.metrics().bytes_zero_copy() - zc0, payload);
  auto conns = srv.net().List();
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_GE(conns[0]->bytes_zero_copy(), payload);
  EXPECT_GT(conns[0]->writev_calls(), 0u);
  EXPECT_GT(srv.metrics().net_writev_calls(), 0u);
  lis.Stop();
  ::unlink(path.c_str());
}

// A reply carrying a tag that was never issued fails the pipelined collect —
// the PR 7 hostile-peer discipline survives the multi-tag path.
TEST(PipelinedDispatch, ReadFidPipelinedRejectsUnknownTags) {
  NinepClient client([](std::string_view) { return std::string(); });
  NinepClient::PipeIo io;
  io.send = [](std::string_view) { return Status::Ok(); };
  io.recv = []() -> Result<std::string> {
    Fcall r;
    r.type = MsgType::kRread;
    r.tag = 999;  // never issued
    r.data = "bogus";
    return EncodeFcall(r);
  };
  client.set_pipe_io(std::move(io));
  auto got = client.ReadFidPipelined(7, {{0, 16}, {16, 16}});
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("never issued"), std::string::npos)
      << got.status().message();
}

// Consecutive Twrites to one fid arriving together dispatch as one batch
// under a single dispatch-lock acquisition; ninep.bodyapp_coalesced counts
// the riders and the bytes all land, in order.
TEST(PipelinedDispatch, ConsecutiveBodyappWritesCoalesce) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  uint64_t co0 = srv.metrics().bodyapp_coalesced();

  NinepListener lis(&srv);
  std::string path = SockPath("coal");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  // Seed a window, then speak raw 9P so the writes really pipeline.
  std::string wid;
  {
    auto str = SocketTransport::ConnectUnix(path);
    ASSERT_TRUE(str.ok());
    NinepClient seeder(str.value()->AsTransport());
    ASSERT_TRUE(seeder.Connect("seed").ok());
    auto ctl = seeder.ReadFile("/mnt/help/new/ctl");
    ASSERT_TRUE(ctl.ok());
    wid = std::string(TrimSpace(ctl.value()));
  }
  auto fd = DialUnix(path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(RawHandshake(fd.value()));
  // Walk + open bodyapp for writing.
  Fcall tw;
  tw.type = MsgType::kTwalk;
  tw.tag = 2;
  tw.fid = 0;
  tw.newfid = 1;
  tw.wname = {"mnt", "help", wid, "bodyapp"};
  auto rw = RawRpc(fd.value(), tw);
  ASSERT_TRUE(rw.ok());
  ASSERT_EQ(rw.value().wqid.size(), 4u) << rw.value().ename;
  Fcall to;
  to.type = MsgType::kTopen;
  to.tag = 2;
  to.fid = 1;
  to.mode = kOwrite;
  auto ro = RawRpc(fd.value(), to);
  ASSERT_TRUE(ro.ok());
  ASSERT_EQ(ro.value().type, MsgType::kRopen) << ro.value().ename;

  constexpr int kWrites = 12;
  std::string burst;
  std::string mirror;
  for (int i = 0; i < kWrites; i++) {
    Fcall t;
    t.type = MsgType::kTwrite;
    t.tag = static_cast<uint16_t>(50 + i);
    t.fid = 1;
    t.offset = 0;  // bodyapp appends regardless
    t.data = StrFormat("row %02d\n", i);
    mirror += t.data;
    burst += EncodeFcall(t);
  }
  ASSERT_TRUE(WriteFull(fd.value(), burst).ok());
  for (int i = 0; i < kWrites; i++) {
    auto r = DecodeFcall(RecvFrame(fd.value()));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().type, MsgType::kRwrite) << r.value().ename;
    EXPECT_EQ(r.value().tag, 50 + i);  // writes stay strictly ordered
  }
  // One 64KB recv ingests the whole burst, so at least one batch formed.
  EXPECT_GT(srv.metrics().bodyapp_coalesced(), co0);

  uint32_t body = RawOpenRead(fd.value(), {"mnt", "help", wid, "body"}, 3);
  ASSERT_NE(body, kNoFid);
  Fcall tr9;
  tr9.type = MsgType::kTread;
  tr9.tag = 4;
  tr9.fid = body;
  tr9.offset = 0;
  tr9.count = 4096;
  auto rr = RawRpc(fd.value(), tr9);
  ASSERT_TRUE(rr.ok());
  ASSERT_EQ(rr.value().type, MsgType::kRread) << rr.value().ename;
  EXPECT_EQ(rr.value().data, mirror);
  close(fd.value());
  lis.Stop();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace help
