// Tool-suite integration: the rc scripts in /help connecting programs to the
// screen through /mnt/help — the decl/uses browsers, the db scripts, the
// mail tool, and help/parse itself.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/tools/tools.h"

namespace help {
namespace {

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() : h_(s_.help) {}

  // Selects rune range [q0,q1) in w's body and makes it current.
  void Select(Window* w, size_t q0, size_t q1) {
    w->body().sel = {q0, q1};
    h_.SetCurrent(&w->body());
  }
  // Null-selection click at the first occurrence of `needle` in w's body.
  void PointAt(Window* w, std::string_view needle, size_t skip = 0) {
    size_t off = w->body().text->Utf8().find(needle);
    ASSERT_NE(off, std::string::npos) << needle;
    off += skip;
    // Byte offset == rune offset for the ASCII corpus.
    Select(w, off, off);
  }
  Window* Open(std::string_view path) {
    auto w = h_.OpenFile(path, "/", nullptr);
    EXPECT_TRUE(w.ok()) << w.message();
    return w.ok() ? w.value() : nullptr;
  }
  // Runs `text` as if middle-clicked in the window tagged `tag_substr`.
  void Exec(std::string_view text, std::string_view tag_substr) {
    Window* host = nullptr;
    for (Window* w : h_.AllWindows()) {
      if (w->tag().text->Utf8().find(tag_substr) != std::string::npos) {
        host = w;
      }
    }
    ASSERT_NE(host, nullptr) << tag_substr;
    ASSERT_TRUE(h_.ExecuteText(text, host).ok());
  }
  Window* Tagged(std::string_view substr) {
    Window* found = nullptr;
    for (Window* w : h_.AllWindows()) {
      if (w->tag().text->Utf8().find(substr) != std::string::npos) {
        found = w;
      }
    }
    return found;
  }

  PaperSession s_;
  Help& h_;
};

TEST_F(ToolsTest, HelpParseExtractsContext) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  PointAt(w, "(uchar*)n", 8);  // the n in errs((uchar*)n)
  h_.vfs().WriteFile("/bin/t", "eval `{help/parse -c}\necho $file $dir $id $line\n");
  ASSERT_TRUE(h_.ExecuteText("t", w).ok());
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find(
                "/usr/rob/src/help/exec.c /usr/rob/src/help n 252"),
            std::string::npos)
      << h_.errors_window()->body().text->Utf8();
}

TEST_F(ToolsTest, HelpParseWordAndLineFlags) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  PointAt(w, "findopen1", 3);
  h_.vfs().WriteFile("/bin/t", "help/parse -w\nhelp/parse -l\nhelp/parse -d\n");
  ASSERT_TRUE(h_.ExecuteText("t", w).ok());
  std::string out = h_.errors_window()->body().text->Utf8();
  EXPECT_NE(out.find("findopen1\n"), std::string::npos);
  EXPECT_NE(out.find("/usr/rob/src/help\n"), std::string::npos);
}

TEST_F(ToolsTest, HelpBufPrintsSnarf) {
  h_.set_snarf("buffered text");
  ASSERT_TRUE(h_.ExecuteText("help/buf", nullptr).ok());
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find("buffered text"),
            std::string::npos);
}

TEST_F(ToolsTest, DeclFindsDeclarationOfGlobal) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  PointAt(w, "(uchar*)n", 8);
  Exec("decl", "/help/cbr/stf");
  Window* out = Tagged(" decl Close!");
  ASSERT_NE(out, nullptr);
  EXPECT_NE(out->body().text->Utf8().find("dat.h:136"), std::string::npos)
      << out->body().text->Utf8();
}

TEST_F(ToolsTest, DeclOfLocalFindsLocal) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  // The n inside findopen1 (line 269) is the local declared at 262.
  size_t off = w->body().text->Utf8().find("\tn = 0;\n\tif(s)");
  ASSERT_NE(off, std::string::npos);
  Select(w, off + 1, off + 1);
  Exec("decl", "/help/cbr/stf");
  Window* out = Tagged(" decl Close!");
  ASSERT_NE(out, nullptr);
  EXPECT_NE(out->body().text->Utf8().find("exec.c:262"), std::string::npos)
      << out->body().text->Utf8();
}

TEST_F(ToolsTest, UsesReproducesFigure10) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  PointAt(w, "(uchar*)n", 8);
  Exec("uses *.c", "/help/cbr/stf");
  Window* out = Tagged(" uses Close!");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->body().text->Utf8(),
            "./dat.h:136\n"
            "exec.c:213\n"
            "exec.c:252\n"
            "help.c:35\n");
}

TEST_F(ToolsTest, SrcFindsFunctionDefinition) {
  Window* w = Open("/usr/rob/src/help/errs.c");
  PointAt(w, "textinsert", 4);
  Exec("src", "/help/cbr/stf");
  Window* out = Tagged(" src Close!");
  ASSERT_NE(out, nullptr);
  EXPECT_NE(out->body().text->Utf8().find("text.c:26"), std::string::npos)
      << out->body().text->Utf8();
}

TEST_F(ToolsTest, DeclOCloseTheLoopExtension) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  PointAt(w, "(uchar*)n", 8);
  Exec("decl.o", "/help/cbr/stf");
  // The declaration's window opened automatically, positioned at the line.
  Window* dat = h_.WindowForFile("/usr/rob/src/help/dat.h");
  ASSERT_NE(dat, nullptr);
  Selection sel = dat->body().sel;
  EXPECT_EQ(dat->body().text->Utf8Range(sel.q0, sel.q1), "uchar *n;\n");
}

TEST_F(ToolsTest, CbrMkRunsInSelectionContext) {
  Window* w = Open("/usr/rob/src/help/exec.c");
  PointAt(w, "lookup", 2);
  // Make one source newer than its object.
  h_.ExecuteText("touch exec.c", w);
  Exec("mk", "/help/cbr/stf");
  Window* out = Tagged("/usr/rob/src/help/mk");
  ASSERT_NE(out, nullptr);
  std::string body = out->body().text->Utf8();
  EXPECT_NE(body.find("vc -w exec.c"), std::string::npos) << body;
  EXPECT_NE(body.find("vl -o help"), std::string::npos);
  EXPECT_EQ(body.find("vc -w errs.c"), std::string::npos);  // only the stale one
}

TEST_F(ToolsTest, DbStackScript) {
  Window* scratch = h_.CreateWindow("scratch");
  scratch->body().text->SetAll("crash in 176153 reported\n");
  scratch->Relayout();
  PointAt(scratch, "176153", 3);
  Exec("stack", "/help/db/stf");
  Window* out = Tagged("176153 stack");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->ContextDir(), "/usr/rob/src/help");
  EXPECT_NE(out->body().text->Utf8().find("strchr.s:34"), std::string::npos);
}

TEST_F(ToolsTest, DbPsAndBrokeScripts) {
  Exec("broke", "/help/db/stf");
  Window* broke = Tagged("broke Close!");
  ASSERT_NE(broke, nullptr);
  EXPECT_NE(broke->body().text->Utf8().find("176153"), std::string::npos);
  Exec("ps", "/help/db/stf");
  Window* ps = Tagged("ps Close!");
  ASSERT_NE(ps, nullptr);
  EXPECT_NE(ps->body().text->Utf8().find("Broken"), std::string::npos);
}

TEST_F(ToolsTest, DbRegsScript) {
  Window* scratch = h_.CreateWindow("scratch");
  scratch->body().text->SetAll("176153\n");
  scratch->Relayout();
  PointAt(scratch, "176153", 2);
  Exec("regs", "/help/db/stf");
  Window* out = Tagged("176153 regs");
  ASSERT_NE(out, nullptr);
  EXPECT_NE(out->body().text->Utf8().find("pc\t0x18df4"), std::string::npos);
}

TEST_F(ToolsTest, MailHeadersAndMessages) {
  Exec("headers", "/help/mail/stf");
  Window* headers = Tagged("/mail/box/rob/mbox");
  ASSERT_NE(headers, nullptr);
  std::string body = headers->body().text->Utf8();
  EXPECT_NE(body.find("1 chk@alias.com"), std::string::npos);
  EXPECT_NE(body.find("2 sean Tue Apr 16 19:26:14 EDT 1991"), std::string::npos);
  EXPECT_NE(body.find("7 deutsch%PARCPLACE.COM@mitvma.mit.edu"), std::string::npos);

  PointAt(headers, "2 sean", 4);  // anywhere in the header line
  Exec("messages", "/help/mail/stf");
  Window* msg = Tagged("From sean");
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(msg->body().text->Utf8().find("user TLB miss (load or fetch)"),
            std::string::npos);
}

TEST_F(ToolsTest, MailDeleteRewritesMbox) {
  Exec("headers", "/help/mail/stf");
  Window* headers = Tagged("/mail/box/rob/mbox");
  PointAt(headers, "6 howard", 3);
  Exec("delete", "/help/mail/stf");
  std::string mbox = h_.vfs().ReadFile("/mail/box/rob/mbox").value();
  EXPECT_EQ(mbox.find("howard"), std::string::npos);
  EXPECT_NE(mbox.find("sean"), std::string::npos);
}

TEST_F(ToolsTest, MailSendAppends) {
  h_.set_snarf("thanks, fixed!\n");
  Exec("send", "/help/mail/stf");
  std::string mbox = h_.vfs().ReadFile("/mail/box/rob/mbox").value();
  EXPECT_NE(mbox.find("From rob"), std::string::npos);
  EXPECT_NE(mbox.find("thanks, fixed!"), std::string::npos);
}

TEST_F(ToolsTest, BootLoadsToolsIntoRightColumn) {
  for (const char* stf :
       {"/help/edit/stf", "/help/cbr/stf", "/help/db/stf", "/help/mail/stf"}) {
    Window* w = h_.WindowForFile(stf);
    ASSERT_NE(w, nullptr) << stf;
    EXPECT_EQ(h_.page().ColumnOf(w), 1) << stf;
  }
  EXPECT_NE(Tagged("help/Boot"), nullptr);
  EXPECT_EQ(h_.page().ColumnOf(Tagged("help/Boot")), 0);
}

TEST_F(ToolsTest, ToolWindowIsJustAFile) {
  // "A help window on such a file behaves much like a menu, but is really
  // just a window on a plain file."
  Window* stf = h_.WindowForFile("/help/mail/stf");
  ASSERT_NE(stf, nullptr);
  EXPECT_EQ(stf->body().text->Utf8(),
            h_.vfs().ReadFile("/help/mail/stf").value());
}

TEST_F(ToolsTest, VcReportsRealSyntaxErrors) {
  h_.vfs().WriteFile("/usr/rob/src/help/broken.c", "void f(void)\n{\n\tint x;\n");
  Window* w = Open("/usr/rob/src/help/broken.c");
  ASSERT_TRUE(h_.ExecuteText("vc -w broken.c", w).ok());
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find("unbalanced"),
            std::string::npos);
}

}  // namespace
}  // namespace help
