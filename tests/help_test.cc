// Core user-interface semantics: selections, execution, context rules,
// built-ins, chords, dirty tags, the Errors window.
#include <gtest/gtest.h>

#include "src/core/help.h"

namespace help {
namespace {

class HelpTest : public ::testing::Test {
 protected:
  HelpTest() {
    h_.vfs().MkdirAll("/usr/rob/src/help");
    h_.vfs().WriteFile("/usr/rob/src/help/errs.c", "errs content\nline two\n");
    h_.vfs().WriteFile("/usr/rob/src/help/dat.h", "dat content\n");
    h_.vfs().WriteFile("/usr/rob/lib/profile", "profile line\n");
  }

  Help h_;
};

TEST_F(HelpTest, OpenAbsoluteFile) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  ASSERT_TRUE(w.ok()) << w.message();
  EXPECT_EQ(w.value()->TagFilename(), "/usr/rob/src/help/errs.c");
  EXPECT_EQ(w.value()->body().text->Utf8(), "errs content\nline two\n");
  EXPECT_NE(w.value()->tag().text->Utf8().find("Close! Get!"), std::string::npos);
}

TEST_F(HelpTest, OpenRelativeUsesContextDir) {
  auto w = h_.OpenFile("dat.h", "/usr/rob/src/help", nullptr);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value()->TagFilename(), "/usr/rob/src/help/dat.h");
}

TEST_F(HelpTest, OpenMissingFails) {
  auto w = h_.OpenFile("/ghost.c", "/", nullptr);
  EXPECT_FALSE(w.ok());
  EXPECT_NE(w.message().find("does not exist"), std::string::npos);
}

TEST_F(HelpTest, OpenDirectoryListsWithFinalSlash) {
  auto w = h_.OpenFile("/usr/rob/src/help", "/", nullptr);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value()->TagFilename(), "/usr/rob/src/help/");
  EXPECT_EQ(w.value()->body().text->Utf8(), "dat.h\nerrs.c\n");
  EXPECT_EQ(w.value()->ContextDir(), "/usr/rob/src/help");
}

TEST_F(HelpTest, OpenExistingRevealsNotDuplicates) {
  auto w1 = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  int before = h_.counters().windows_created;
  auto w2 = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w1.value(), w2.value());
  EXPECT_EQ(h_.counters().windows_created, before);
}

TEST_F(HelpTest, OpenWithAddressSelectsLine) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c:2", "/", nullptr);
  ASSERT_TRUE(w.ok());
  Selection sel = w.value()->body().sel;
  EXPECT_EQ(w.value()->body().text->Utf8Range(sel.q0, sel.q1), "line two\n");
  EXPECT_EQ(h_.current_sub(), &w.value()->body());
}

// name:line clamping edge cases through the Open path (the errs.c body is
// "errs content\nline two\n", 22 bytes, 2 lines).

TEST_F(HelpTest, OpenWithLinePastEofClampsToEnd) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c:99", "/", nullptr);
  ASSERT_TRUE(w.ok());
  // Trailing newline: line 99 clamps past the last newline — a caret at EOF.
  size_t eof = w.value()->body().text->size();
  EXPECT_EQ(w.value()->body().sel, (Selection{eof, eof}));
  EXPECT_EQ(h_.current_sub(), &w.value()->body());
}

TEST_F(HelpTest, OpenWithZeroLineReportsAddressError) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c:0", "/", nullptr);
  ASSERT_TRUE(w.ok());  // the window still opens; the address fails
  ASSERT_NE(h_.errors_window(), nullptr);
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find("bad line number"),
            std::string::npos);
}

TEST_F(HelpTest, OpenWithDollarAddressSelectsEof) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c:$", "/", nullptr);
  ASSERT_TRUE(w.ok());
  size_t eof = w.value()->body().text->size();
  EXPECT_EQ(w.value()->body().sel, (Selection{eof, eof}));
}

TEST_F(HelpTest, OpenAddressIntoEmptyBody) {
  h_.vfs().WriteFile("/usr/rob/src/help/empty.c", "");
  auto w = h_.OpenFile("/usr/rob/src/help/empty.c:7", "/", nullptr);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value()->body().text->size(), 0u);
  EXPECT_EQ(w.value()->body().sel, (Selection{0, 0}));
}

TEST_F(HelpTest, OpenDefaultsToFilenameAroundSelection) {
  // Point (null selection) inside a file name; Open with no argument.
  auto dir = h_.OpenFile("/usr/rob/src/help", "/", nullptr);
  ASSERT_TRUE(dir.ok());
  // Click inside "errs.c" in the listing: offset of 'r' in errs.c line.
  size_t off = dir.value()->body().text->Utf8().find("errs.c") + 2;
  dir.value()->body().sel = {off, off};
  h_.SetCurrent(&dir.value()->body());
  ASSERT_TRUE(h_.ExecuteText("Open", dir.value()).ok());
  EXPECT_NE(h_.WindowForFile("/usr/rob/src/help/errs.c"), nullptr);
}

TEST_F(HelpTest, NonNullSelectionTakenLiterally) {
  auto dir = h_.OpenFile("/usr/rob/src/help", "/", nullptr);
  Text& body = *dir.value()->body().text;
  // Select only "errs" — automatic expansion must NOT kick in.
  size_t start = body.Utf8().find("errs.c");
  dir.value()->body().sel = {start, start + 4};
  h_.SetCurrent(&dir.value()->body());
  Status s = h_.ExecuteText("Open", dir.value());
  EXPECT_FALSE(s.ok());  // "errs" does not exist
}

TEST_F(HelpTest, CutPasteSnarfRoundTrip) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  Subwindow& body = w.value()->body();
  body.sel = {0, 4};  // "errs"
  h_.SetCurrent(&body);
  ASSERT_TRUE(h_.ExecuteText("Cut", w.value()).ok());
  EXPECT_EQ(h_.snarf(), "errs");
  EXPECT_EQ(body.text->Utf8().substr(0, 8), " content");
  ASSERT_TRUE(h_.ExecuteText("Paste", w.value()).ok());
  EXPECT_EQ(body.text->Utf8().substr(0, 4), "errs");
  EXPECT_EQ(body.sel, (Selection{0, 4}));  // paste leaves text selected
  // Snarf copies without deleting.
  body.sel = {5, 12};
  ASSERT_TRUE(h_.ExecuteText("Snarf", w.value()).ok());
  EXPECT_EQ(h_.snarf(), "content");
  EXPECT_EQ(body.text->Utf8().substr(5, 7), "content");
}

TEST_F(HelpTest, ChordsCutAndPaste) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  Subwindow& body = w.value()->body();
  body.sel = {0, 4};
  h_.SetCurrent(&body);
  int presses = h_.counters().button_presses;
  h_.ChordCut();
  EXPECT_EQ(h_.snarf(), "errs");
  h_.ChordPaste();
  EXPECT_EQ(body.text->Utf8().substr(0, 4), "errs");
  EXPECT_EQ(h_.counters().button_presses, presses + 2);
}

TEST_F(HelpTest, DirtyTagShowsPut) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  Subwindow& body = w.value()->body();
  EXPECT_EQ(w.value()->tag().text->Utf8().find("Put!"), std::string::npos);
  body.sel = {0, 0};
  h_.SetCurrent(&body);
  h_.Type("x");
  EXPECT_NE(w.value()->tag().text->Utf8().find("Put!"), std::string::npos);
  // Put! writes and clears the marker.
  ASSERT_TRUE(h_.ExecuteText("Put!", w.value()).ok());
  EXPECT_EQ(w.value()->tag().text->Utf8().find("Put!"), std::string::npos);
  EXPECT_EQ(h_.vfs().ReadFile("/usr/rob/src/help/errs.c").value().substr(0, 1), "x");
}

TEST_F(HelpTest, GetReloadsFromDisk) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  h_.vfs().WriteFile("/usr/rob/src/help/errs.c", "replaced\n");
  ASSERT_TRUE(h_.ExecuteText("Get!", w.value()).ok());
  EXPECT_EQ(w.value()->body().text->Utf8(), "replaced\n");
}

TEST_F(HelpTest, CloseRemovesWindowAndFiles) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  int id = w.value()->id();
  ASSERT_TRUE(h_.ExecuteText("Close!", w.value()).ok());
  EXPECT_EQ(h_.WindowForFile("/usr/rob/src/help/errs.c"), nullptr);
  EXPECT_FALSE(h_.vfs().Walk("/mnt/help/" + std::to_string(id) + "/body").ok());
}

TEST_F(HelpTest, TypingReplacesSelectionAndNewlineIsJustACharacter) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  Subwindow& body = w.value()->body();
  body.sel = {0, 4};
  h_.SetCurrent(&body);
  h_.Type("X\nY");
  EXPECT_EQ(body.text->Utf8().substr(0, 3), "X\nY");
  EXPECT_EQ(h_.counters().keystrokes, 3);
  EXPECT_TRUE(body.sel.null());
  EXPECT_EQ(body.sel.q0, 3u);
}

TEST_F(HelpTest, ExternalCommandOutputGoesToErrors) {
  ASSERT_TRUE(h_.ExecuteText("echo hello from shell", nullptr).ok());
  ASSERT_NE(h_.errors_window(), nullptr);
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find("hello from shell"),
            std::string::npos);
  // Reuses the same Errors window.
  Window* errors = h_.errors_window();
  ASSERT_TRUE(h_.ExecuteText("echo second", nullptr).ok());
  EXPECT_EQ(h_.errors_window(), errors);
  EXPECT_NE(errors->body().text->Utf8().find("second"), std::string::npos);
}

TEST_F(HelpTest, CommandContextDirFromTag) {
  h_.vfs().WriteFile("/usr/rob/src/help/hello", "echo ran in `{pwd}\n");
  // `pwd` isn't implemented; use a simpler proof: a script that cats a
  // relative file only present in the window's directory.
  h_.vfs().WriteFile("/usr/rob/src/help/showdat", "cat dat.h\n");
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  ASSERT_TRUE(h_.ExecuteText("showdat", w.value()).ok());
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find("dat content"),
            std::string::npos);
}

TEST_F(HelpTest, UnknownCommandReportsIntoErrors) {
  ASSERT_TRUE(h_.ExecuteText("nosuchthing", nullptr).ok());
  EXPECT_NE(h_.errors_window()->body().text->Utf8().find("file does not exist"),
            std::string::npos);
}

TEST_F(HelpTest, HelpselPassedToCommands) {
  h_.vfs().WriteFile("/bin/showsel", "echo sel is $helpsel\n");
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  w.value()->body().sel = {5, 12};
  h_.SetCurrent(&w.value()->body());
  ASSERT_TRUE(h_.ExecuteText("showsel", w.value()).ok());
  std::string errs = h_.errors_window()->body().text->Utf8();
  EXPECT_NE(errs.find("sel is " + std::to_string(w.value()->id()) + " 5 12"),
            std::string::npos)
      << errs;
}

TEST_F(HelpTest, PatternSearchesAndWraps) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  h_.SetCurrent(&w.value()->body());
  ASSERT_TRUE(h_.ExecuteText("Pattern line", w.value()).ok());
  Selection s = w.value()->body().sel;
  EXPECT_EQ(w.value()->body().text->Utf8Range(s.q0, s.q1), "line");
  // Again: wraps around (only one occurrence, so it finds the same).
  ASSERT_TRUE(h_.ExecuteText("Pattern l.ne", w.value()).ok());
  EXPECT_EQ(w.value()->body().sel, s);
  EXPECT_FALSE(h_.ExecuteText("Pattern zebra", w.value()).ok());
}

TEST_F(HelpTest, TextSearchLiteral) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  h_.SetCurrent(&w.value()->body());
  // "l.ne" as Text (literal) must fail even though it matches as a Pattern.
  EXPECT_FALSE(h_.ExecuteText("Text l.ne", w.value()).ok());
  EXPECT_TRUE(h_.ExecuteText("Text line", w.value()).ok());
}

TEST_F(HelpTest, UndoRedoBuiltins) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  std::string original = w.value()->body().text->Utf8();
  w.value()->body().sel = {0, 0};
  h_.SetCurrent(&w.value()->body());
  h_.Type("CHANGE ");
  ASSERT_TRUE(h_.ExecuteText("Undo", w.value()).ok());
  EXPECT_EQ(w.value()->body().text->Utf8(), original);
  ASSERT_TRUE(h_.ExecuteText("Redo", w.value()).ok());
  EXPECT_EQ(w.value()->body().text->Utf8().substr(0, 7), "CHANGE ");
}

TEST_F(HelpTest, NewCreatesEmptyWindow) {
  int before = h_.counters().windows_created;
  ASSERT_TRUE(h_.ExecuteText("New", nullptr).ok());
  EXPECT_EQ(h_.counters().windows_created, before + 1);
}

TEST_F(HelpTest, ExitSetsFlag) {
  EXPECT_FALSE(h_.exited());
  ASSERT_TRUE(h_.ExecuteText("Exit", nullptr).ok());
  EXPECT_TRUE(h_.exited());
}

TEST_F(HelpTest, MultipleWindowsShareOneBody) {
  auto w1 = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  // Force a second window on the same file by creating it directly.
  Window* w2 = h_.CreateWindow("/usr/rob/src/help/errs.c Close! Get!");
  // Not registered as the same file (CreateWindow is generic), so share via
  // the public open path instead: closing and reopening reveals. Instead,
  // check the intended mechanism: bodies_ reuse.
  auto w3 = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  EXPECT_EQ(w1.value(), w3.value());
  (void)w2;
}

TEST_F(HelpTest, MouseSelectionSetsCurrentAndOthersOutline) {
  auto a = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  auto b = h_.OpenFile("/usr/rob/src/help/dat.h", "/", nullptr);
  // Sweep in a's body.
  Rect ra = a.value()->rect();
  // x0 is the scroll bar; body text starts one cell right.
  h_.MouseSelect({ra.x0 + 1, ra.y0 + 1}, {ra.x0 + 5, ra.y0 + 1});
  EXPECT_EQ(h_.current_sub(), &a.value()->body());
  EXPECT_EQ(a.value()->body().sel, (Selection{0, 4}));
  // Sweep in b's body: current moves; a's selection remains (outline).
  Rect rb = b.value()->rect();
  h_.MouseSelect({rb.x0 + 1, rb.y0 + 1}, {rb.x0 + 4, rb.y0 + 1});
  EXPECT_EQ(h_.current_sub(), &b.value()->body());
  EXPECT_EQ(a.value()->body().sel, (Selection{0, 4}));
}

TEST_F(HelpTest, MiddleClickExecutesWholeWord) {
  // Put the word "Exit" into a window body and click mid-word with B2.
  Window* w = h_.CreateWindow("scratch");
  w->body().text->SetAll("say Exit now\n");
  w->Relayout();
  Rect r = w->rect();
  // "Exit" starts at column 4; click its middle (column 6).
  h_.MouseExecWord({r.x0 + 6, r.y0 + 1});
  EXPECT_TRUE(h_.exited());
}

TEST_F(HelpTest, RenderAnnotatedShowsReverseVideoSelection) {
  auto w = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  w.value()->body().sel = {0, 4};
  h_.SetCurrent(&w.value()->body());
  std::string annotated = h_.Render(true);
  EXPECT_NE(annotated.find("\xC2\xAB" "errs\xC2\xBB"), std::string::npos) << annotated;
}

}  // namespace
}  // namespace help
