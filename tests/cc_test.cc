// C lexer, preprocessor, and browser (decl/uses/scoping) tests.
#include <gtest/gtest.h>

#include "src/cc/browser.h"
#include "src/cc/clex.h"
#include "src/cc/cpp.h"

namespace help {
namespace {

std::vector<std::string> TokenTexts(std::string_view src) {
  auto toks = CLex(src, "t.c");
  EXPECT_TRUE(toks.ok()) << toks.message();
  std::vector<std::string> out;
  for (const CToken& t : toks.value()) {
    if (t.kind != CTok::kEof) {
      out.push_back(t.text);
    }
  }
  return out;
}

TEST(CLex, BasicTokens) {
  EXPECT_EQ(TokenTexts("int n = 42;"),
            (std::vector<std::string>{"int", "n", "=", "42", ";"}));
  EXPECT_EQ(TokenTexts("a->b ++x"), (std::vector<std::string>{"a", "->", "b", "++", "x"}));
  EXPECT_EQ(TokenTexts("x <<= 2"), (std::vector<std::string>{"x", "<<=", "2"}));
}

TEST(CLex, CommentsSkipped) {
  EXPECT_EQ(TokenTexts("a /* comment\nacross lines */ b // tail\nc"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CLex, StringsAndChars) {
  auto toks = CLex("s = \"a \\\" b\"; c = 'x';", "t.c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[2].kind, CTok::kString);
  EXPECT_EQ(toks.value()[2].text, "\"a \\\" b\"");
  EXPECT_EQ(toks.value()[6].kind, CTok::kCharConst);
}

TEST(CLex, CoordinatesTrackLinesAndColumns) {
  auto toks = CLex("int a;\n  char b;", "file.c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].line, 1);
  EXPECT_EQ(toks.value()[0].col, 1);
  EXPECT_EQ(toks.value()[3].text, "char");
  EXPECT_EQ(toks.value()[3].line, 2);
  EXPECT_EQ(toks.value()[3].col, 3);
}

TEST(CLex, LineDirectiveResetsCoordinates) {
  auto toks = CLex("#line 100 \"other.h\"\nint x;\n#line 5 \"t.c\"\nint y;", "t.c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].file, "other.h");
  EXPECT_EQ(toks.value()[0].line, 100);
  EXPECT_EQ(toks.value()[3].text, "int");
  EXPECT_EQ(toks.value()[3].file, "t.c");
  EXPECT_EQ(toks.value()[3].line, 5);
}

TEST(CLex, OtherDirectivesSkipped) {
  EXPECT_EQ(TokenTexts("#define X 1\n#ifdef Y\nint a;\n#endif\n"),
            (std::vector<std::string>{"int", "a", ";"}));
}

TEST(CLex, ContinuedDirective) {
  EXPECT_EQ(TokenTexts("#define M(a) \\\n  (a+1)\nint z;"),
            (std::vector<std::string>{"int", "z", ";"}));
}

TEST(CLex, Errors) {
  EXPECT_FALSE(CLex("/* never closed", "t.c").ok());
  EXPECT_FALSE(CLex("\"never closed", "t.c").ok());
  EXPECT_FALSE(CLex("\"newline\nin string\"", "t.c").ok());
}

TEST(CLex, KeywordsRecognized) {
  auto toks = CLex("struct typedef while uchar", "t.c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, CTok::kKeyword);
  EXPECT_EQ(toks.value()[1].kind, CTok::kKeyword);
  EXPECT_EQ(toks.value()[2].kind, CTok::kKeyword);
  EXPECT_EQ(toks.value()[3].kind, CTok::kIdent);  // Plan 9 typedef, not keyword
}

// --- Preprocessor -------------------------------------------------------------

class CppTest : public ::testing::Test {
 protected:
  Vfs vfs_;
};

TEST_F(CppTest, InlinesLocalIncludeWithLineMarkers) {
  vfs_.MkdirAll("/src");
  vfs_.WriteFile("/src/a.h", "int from_header;\n");
  vfs_.WriteFile("/src/a.c", "#include \"a.h\"\nint from_c;\n");
  auto out = Preprocess(vfs_, "/src/a.c");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("int from_header;"), std::string::npos);
  EXPECT_NE(out.value().find("#line 1 \"/src/a.h\""), std::string::npos);
  EXPECT_NE(out.value().find("#line 2 \"/src/a.c\""), std::string::npos);
}

TEST_F(CppTest, IncludeOncePerTranslationUnit) {
  vfs_.MkdirAll("/src");
  vfs_.WriteFile("/src/h.h", "int once;\n");
  vfs_.WriteFile("/src/a.c", "#include \"h.h\"\n#include \"h.h\"\n");
  auto out = Preprocess(vfs_, "/src/a.c");
  ASSERT_TRUE(out.ok());
  size_t first = out.value().find("int once;");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.value().find("int once;", first + 1), std::string::npos);
}

TEST_F(CppTest, SystemIncludeFromSysInclude) {
  vfs_.MkdirAll("/sys/include");
  vfs_.WriteFile("/sys/include/u.h", "typedef unsigned char uchar;\n");
  vfs_.WriteFile("/a.c", "#include <u.h>\n");
  auto out = Preprocess(vfs_, "/a.c");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("typedef unsigned char uchar;"), std::string::npos);
}

TEST_F(CppTest, MissingSystemIncludeSkippedLocalErrors) {
  vfs_.WriteFile("/a.c", "#include <nothere.h>\nint x;\n");
  auto out = Preprocess(vfs_, "/a.c");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("int x;"), std::string::npos);
  vfs_.WriteFile("/b.c", "#include \"gone.h\"\n");
  EXPECT_FALSE(Preprocess(vfs_, "/b.c").ok());
}

TEST_F(CppTest, NestedIncludes) {
  vfs_.MkdirAll("/s");
  vfs_.WriteFile("/s/inner.h", "int inner;\n");
  vfs_.WriteFile("/s/outer.h", "#include \"inner.h\"\nint outer;\n");
  vfs_.WriteFile("/s/m.c", "#include \"outer.h\"\n");
  auto out = Preprocess(vfs_, "/s/m.c");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("int inner;"), std::string::npos);
  EXPECT_NE(out.value().find("int outer;"), std::string::npos);
}

// --- Browser -------------------------------------------------------------------

class BrowserTest : public ::testing::Test {
 protected:
  void Add(std::string_view text, std::string_view name) {
    Status s = b_.AddTranslationUnit(text, name);
    ASSERT_TRUE(s.ok()) << s.message();
  }
  // Formats UsesOf a symbol as "file:line file:line …".
  std::string Uses(const CSymbol* sym) {
    std::string out;
    for (const CUse& u : b_.UsesOf(sym->id)) {
      if (!out.empty()) {
        out += " ";
      }
      out += u.file + ":" + std::to_string(u.line);
    }
    return out;
  }
  CBrowser b_;
};

TEST_F(BrowserTest, GlobalVariableDeclAndUses) {
  Add("int n;\n"          // 1
      "void f(void)\n"    // 2
      "{\n"               // 3
      "\tn = 0;\n"        // 4
      "}\n",              // 5
      "a.c");
  const CSymbol* n = b_.FindGlobal("n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->kind, CSymKind::kGlobalVar);
  EXPECT_EQ(n->line, 1);
  EXPECT_EQ(Uses(n), "a.c:1 a.c:4");
}

TEST_F(BrowserTest, LocalsShadowGlobals) {
  Add("int n;\n"
      "void f(void)\n"
      "{\n"
      "\tint n;\n"
      "\tn = 1;\n"
      "}\n"
      "void g(void)\n"
      "{\n"
      "\tn = 2;\n"
      "}\n",
      "a.c");
  const CSymbol* global = b_.FindGlobal("n");
  ASSERT_NE(global, nullptr);
  // The global's uses: its decl and g's assignment — not f's local.
  EXPECT_EQ(Uses(global), "a.c:1 a.c:9");
}

TEST_F(BrowserTest, ParamsShadowAndResolve) {
  Add("int x;\n"
      "int f(int x)\n"
      "{\n"
      "\treturn x;\n"
      "}\n",
      "a.c");
  const CSymbol* global = b_.FindGlobal("x");
  EXPECT_EQ(Uses(global), "a.c:1");  // param use on line 4 is not the global
  const CSymbol* at4 = b_.ResolveAt("x", "a.c", 4);
  ASSERT_NE(at4, nullptr);
  EXPECT_EQ(at4->kind, CSymKind::kParam);
}

TEST_F(BrowserTest, BlockScopesNest) {
  Add("void f(void)\n"
      "{\n"
      "\tint v;\n"
      "\t{\n"
      "\t\tint v;\n"
      "\t\tv = 1;\n"
      "\t}\n"
      "\tv = 2;\n"
      "}\n",
      "a.c");
  const CSymbol* inner = b_.ResolveAt("v", "a.c", 6);
  const CSymbol* outer = b_.ResolveAt("v", "a.c", 8);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->line, 5);
  EXPECT_EQ(outer->line, 3);
}

TEST_F(BrowserTest, TypedefsEnableDeclarationParsing) {
  Add("typedef struct Page Page;\n"
      "struct Page\n"
      "{\n"
      "\tPage *link;\n"
      "\tint nwin;\n"
      "};\n"
      "Page *freelist;\n"
      "void f(void)\n"
      "{\n"
      "\tPage *p;\n"
      "\tp = freelist;\n"
      "}\n",
      "a.c");
  const CSymbol* freelist = b_.FindGlobal("freelist");
  ASSERT_NE(freelist, nullptr);
  EXPECT_EQ(Uses(freelist), "a.c:7 a.c:11");
  const CSymbol* p = b_.ResolveAt("p", "a.c", 11);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, CSymKind::kLocal);
}

TEST_F(BrowserTest, FieldAccessIsNotAUse) {
  Add("typedef struct T T;\n"
      "struct T { int n; };\n"
      "int n;\n"
      "void f(T *t)\n"
      "{\n"
      "\tt->n = 1;\n"
      "\tn = 2;\n"
      "}\n",
      "a.c");
  const CSymbol* global = b_.FindGlobal("n");
  EXPECT_EQ(Uses(global), "a.c:3 a.c:7");  // line 6's ->n is a field
}

TEST_F(BrowserTest, FunctionDefinitionPreferredOverPrototype) {
  Add("void f(void);\n"
      "void f(void)\n"
      "{\n"
      "}\n",
      "a.c");
  const CSymbol* f = b_.FindFunc("f");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->is_definition);
  EXPECT_EQ(f->line, 2);
}

TEST_F(BrowserTest, ImplicitExternalsUnify) {
  Add("void f(char *s)\n"
      "{\n"
      "\tstrlen(s);\n"
      "\tstrlen(s);\n"
      "}\n",
      "a.c");
  const CSymbol* strlen_sym = b_.FindGlobal("strlen");
  ASSERT_NE(strlen_sym, nullptr);
  EXPECT_EQ(strlen_sym->kind, CSymKind::kImplicit);
  EXPECT_EQ(b_.UsesOf(strlen_sym->id).size(), 2u);
}

TEST_F(BrowserTest, HeadersSharedAcrossTUsYieldOneSymbol) {
  std::string header_as_inlined =
      "#line 1 \"/src/d.h\"\n"
      "int shared;\n";
  Add(header_as_inlined + "#line 2 \"/src/a.c\"\nvoid fa(void) { shared = 1; }\n",
      "/src/a.c");
  Add(header_as_inlined + "#line 2 \"/src/b.c\"\nvoid fb(void) { shared = 2; }\n",
      "/src/b.c");
  const CSymbol* shared = b_.FindGlobal("shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(Uses(shared), "/src/a.c:2 /src/b.c:2 /src/d.h:1");
}

TEST_F(BrowserTest, LabelsAndGotoAreNotUses) {
  Add("int Again;\n"
      "void f(void)\n"
      "{\n"
      "Again:\n"
      "\tgoto Again;\n"
      "}\n",
      "a.c");
  const CSymbol* again = b_.FindGlobal("Again");
  EXPECT_EQ(Uses(again), "a.c:1");
}

TEST_F(BrowserTest, EnumConstants) {
  Add("enum { kOne, kTwo = 5 };\n"
      "int f(void)\n"
      "{\n"
      "\treturn kTwo;\n"
      "}\n",
      "a.c");
  const CSymbol* k = b_.FindGlobal("kTwo");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->kind, CSymKind::kEnumConst);
  EXPECT_EQ(Uses(k), "a.c:1 a.c:4");
}

TEST_F(BrowserTest, FunctionPointerFieldAndCast) {
  Add("typedef struct Cmd Cmd;\n"
      "struct Cmd { void (*f)(int); };\n"
      "int n;\n"
      "void go(Cmd *c)\n"
      "{\n"
      "\t(*c->f)((int)n);\n"
      "}\n",
      "a.c");
  const CSymbol* n = b_.FindGlobal("n");
  EXPECT_EQ(Uses(n), "a.c:3 a.c:6");
}

TEST_F(BrowserTest, CaseExpressionsRecordUses) {
  Add("int mode;\n"
      "enum { kA };\n"
      "void f(void)\n"
      "{\n"
      "\tswitch(mode){\n"
      "\tcase kA:\n"
      "\t\tbreak;\n"
      "\tdefault:\n"
      "\t\tbreak;\n"
      "\t}\n"
      "}\n",
      "a.c");
  EXPECT_EQ(Uses(b_.FindGlobal("mode")), "a.c:1 a.c:5");
  EXPECT_EQ(Uses(b_.FindGlobal("kA")), "a.c:2 a.c:6");
}

}  // namespace
}  // namespace help
