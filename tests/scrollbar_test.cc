// Scroll bars: "an extremely spare [interface], consisting only of text,
// scroll bars, one simple kind of window..." — geometry, gestures (B1 back,
// B3 forward, B2 absolute), thumb rendering.
#include <gtest/gtest.h>

#include "src/core/help.h"

namespace help {
namespace {

class ScrollbarTest : public ::testing::Test {
 protected:
  ScrollbarTest() {
    std::string many;
    for (int i = 1; i <= 200; i++) {
      many += "line " + std::to_string(i) + "\n";
    }
    h_.vfs().MkdirAll("/f");
    h_.vfs().WriteFile("/f/long", many);
    auto w = h_.OpenFile("/f/long", "/", nullptr);
    w_ = w.value();
  }

  Help h_;
  Window* w_ = nullptr;
};

TEST_F(ScrollbarTest, GeometryLeftOfBody) {
  Rect sb = w_->ScrollbarRect();
  EXPECT_EQ(sb.x0, w_->rect().x0);
  EXPECT_EQ(sb.width(), 1);
  EXPECT_EQ(sb.y0, w_->rect().y0 + 1);  // below the tag
  EXPECT_EQ(sb.y1, w_->rect().y1);
  // The body starts one cell right of the bar.
  EXPECT_EQ(w_->body().frame.rect().x0, sb.x1);
}

TEST_F(ScrollbarTest, HiddenWindowHasNoBar) {
  w_->Hide();
  EXPECT_TRUE(w_->ScrollbarRect().empty());
}

TEST_F(ScrollbarTest, Button3ScrollsForwardProportionally) {
  Rect sb = w_->ScrollbarRect();
  EXPECT_EQ(w_->body().frame.origin(), 0u);
  // B3 near the top: scroll forward a little.
  h_.MouseDrag({sb.x0, sb.y0}, {sb.x0, sb.y0});
  size_t after_small = w_->body().frame.origin();
  EXPECT_EQ(w_->body().text->LineAt(after_small), 2u);
  // B3 at the bottom: scroll a whole page.
  h_.MouseDrag({sb.x0, sb.y1 - 1}, {sb.x0, sb.y1 - 1});
  EXPECT_EQ(w_->body().text->LineAt(w_->body().frame.origin()),
            2u + static_cast<size_t>(sb.height()));
}

TEST_F(ScrollbarTest, Button1ScrollsBackward) {
  Rect sb = w_->ScrollbarRect();
  w_->ScrollTo(0.5);
  size_t mid = w_->body().frame.origin();
  h_.MouseClick({sb.x0, sb.y0 + 2});  // B1: back 3 lines
  EXPECT_EQ(w_->body().text->LineAt(w_->body().frame.origin()),
            w_->body().text->LineAt(mid) - 3);
}

TEST_F(ScrollbarTest, Button2JumpsAbsolute) {
  Rect sb = w_->ScrollbarRect();
  // Click 90% down the bar: land ~90% into the text.
  int y = sb.y0 + (sb.height() * 9) / 10;
  h_.MouseExec({sb.x0, y}, {sb.x0, y});
  size_t line = w_->body().text->LineAt(w_->body().frame.origin());
  EXPECT_GT(line, 150u);
  EXPECT_LE(line, 200u);
  // Top of the bar: back to the beginning.
  h_.MouseExec({sb.x0, sb.y0}, {sb.x0, sb.y0});
  EXPECT_EQ(w_->body().frame.origin(), 0u);
}

TEST_F(ScrollbarTest, ScrollClampsAtEnds) {
  w_->ScrollLines(-100);
  EXPECT_EQ(w_->body().frame.origin(), 0u);
  w_->ScrollLines(100000);
  EXPECT_EQ(w_->body().text->LineAt(w_->body().frame.origin()), 200u);
}

TEST_F(ScrollbarTest, ThumbTracksPosition) {
  h_.Render();
  const Screen& top_screen = h_.page().screen();
  Rect sb = w_->ScrollbarRect();
  // At the top, the thumb (█) starts at the first bar row.
  EXPECT_EQ(top_screen.At(sb.x0, sb.y0).ch, 0x2588u);
  // Near the bottom it does not.
  w_->ScrollTo(0.9);
  h_.Render();
  EXPECT_NE(h_.page().screen().At(sb.x0, sb.y0).ch, 0x2588u);
  EXPECT_EQ(h_.page().screen().At(sb.x0, sb.y0).ch, 0x2502u);  // │ track
}

TEST_F(ScrollbarTest, ScrollbarClicksAreNotSelections) {
  Rect sb = w_->ScrollbarRect();
  w_->body().sel = {3, 9};
  h_.SetCurrent(&w_->body());
  h_.MouseClick({sb.x0, sb.y0 + 1});
  // Selection untouched; scrolling is not selecting.
  EXPECT_EQ(w_->body().sel, (Selection{3, 9}));
}

}  // namespace
}  // namespace help
