#include "src/base/rune.h"

#include <gtest/gtest.h>

namespace help {
namespace {

TEST(Rune, AsciiRoundTrip) {
  for (Rune r = 1; r < 0x80; r++) {
    std::string enc;
    EncodeRune(r, &enc);
    ASSERT_EQ(enc.size(), 1u);
    int size;
    EXPECT_EQ(DecodeRune(enc, &size), r);
    EXPECT_EQ(size, 1);
  }
}

struct RoundTripCase {
  Rune r;
  size_t bytes;
};

class RuneRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RuneRoundTrip, EncodeDecode) {
  std::string enc;
  EncodeRune(GetParam().r, &enc);
  EXPECT_EQ(enc.size(), GetParam().bytes);
  int size;
  EXPECT_EQ(DecodeRune(enc, &size), GetParam().r);
  EXPECT_EQ(static_cast<size_t>(size), enc.size());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, RuneRoundTrip,
                         ::testing::Values(RoundTripCase{0x7F, 1}, RoundTripCase{0x80, 2},
                                           RoundTripCase{0x7FF, 2}, RoundTripCase{0x800, 3},
                                           RoundTripCase{0xFFFF, 3},
                                           RoundTripCase{0x10000, 4},
                                           RoundTripCase{0x10FFFF, 4},
                                           RoundTripCase{0x25A0, 3},   // ■ the tab square
                                           RoundTripCase{0x00AB, 2})); // «

TEST(Rune, InvalidLeadByte) {
  int size;
  EXPECT_EQ(DecodeRune("\xFF", &size), kRuneError);
  EXPECT_EQ(size, 1);  // always makes progress
  EXPECT_EQ(DecodeRune("\x80", &size), kRuneError);  // stray continuation
}

TEST(Rune, TruncatedSequence) {
  std::string enc;
  EncodeRune(0x4E2D, &enc);  // 3 bytes
  int size;
  EXPECT_EQ(DecodeRune(enc.substr(0, 2), &size), kRuneError);
  EXPECT_EQ(size, 1);
}

TEST(Rune, OverlongRejected) {
  // 0xC0 0x80 is an overlong encoding of NUL.
  int size;
  EXPECT_EQ(DecodeRune("\xC0\x80", &size), kRuneError);
}

TEST(Rune, SurrogatesRejected) {
  // 0xD800 encoded as UTF-8 (ED A0 80) must not decode.
  int size;
  EXPECT_EQ(DecodeRune("\xED\xA0\x80", &size), kRuneError);
  // And must not encode.
  std::string enc;
  EncodeRune(0xD800, &enc);
  EXPECT_EQ(DecodeRune(enc, &size), kRuneError);
}

TEST(Rune, StringConversionsRoundTrip) {
  std::string utf8 = "help.c:27 \xE2\x96\xA0 caf\xC3\xA9";
  RuneString runes = RunesFromUtf8(utf8);
  EXPECT_EQ(Utf8FromRunes(runes), utf8);
  EXPECT_EQ(RuneLen(utf8), runes.size());
}

TEST(Rune, MalformedStreamProgresses) {
  std::string bad = "a\xFF\xFE b";
  RuneString runes = RunesFromUtf8(bad);
  EXPECT_EQ(runes.size(), 5u);  // a, FFFD, FFFD, ' ', b
  EXPECT_EQ(runes[1], kRuneError);
}

TEST(Rune, WordClasses) {
  // Word runes include the identifier and command characters…
  for (Rune r : RuneString(U"azAZ09_.-+/*!")) {
    EXPECT_TRUE(IsWordRune(r)) << static_cast<uint32_t>(r);
  }
  // …but not separators or quotes.
  for (Rune r : RuneString(U" \t\n()[]{}<>'\",;")) {
    EXPECT_FALSE(IsWordRune(r)) << static_cast<uint32_t>(r);
  }
}

TEST(Rune, FilenameClassesIncludeAddressChars) {
  EXPECT_TRUE(IsFilenameRune(':'));  // help.c:27
  EXPECT_TRUE(IsFilenameRune('/'));
  EXPECT_TRUE(IsFilenameRune('#'));
  EXPECT_TRUE(IsFilenameRune('$'));
  EXPECT_FALSE(IsFilenameRune(' '));
  EXPECT_FALSE(IsFilenameRune('"'));
}

}  // namespace
}  // namespace help
