// Shell parser + evaluator tests: words, quoting, variables, command
// substitution, pipes, redirection, blocks, globbing, builtins, scripts.
#include <gtest/gtest.h>

#include "src/shell/coreutils.h"
#include "src/shell/shell.h"

namespace help {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  ShellTest() : shell_(&vfs_, &registry_, &procs_) {
    RegisterCoreutils(&vfs_, &registry_);
  }

  // Runs a script; returns stdout. Asserts no parse errors.
  std::string Run(std::string_view src, int* status = nullptr,
                  std::string cwd = "/", std::vector<std::string> args = {}) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    auto r = shell_.Run(src, &env_, std::move(cwd), args, io);
    EXPECT_TRUE(r.ok()) << r.message() << " running: " << src;
    if (status != nullptr) {
      *status = r.ok() ? r.value() : -1;
    }
    last_err_ = err;
    return out;
  }

  Vfs vfs_;
  CommandRegistry registry_;
  ProcTable procs_;
  Env env_;
  Shell shell_;
  std::string last_err_;
};

TEST_F(ShellTest, EchoAndQuoting) {
  EXPECT_EQ(Run("echo hello world"), "hello world\n");
  EXPECT_EQ(Run("echo 'single quoted  spaces'"), "single quoted  spaces\n");
  EXPECT_EQ(Run("echo 'it''s'"), "it's\n");  // '' escapes a quote
  EXPECT_EQ(Run("echo -n x"), "x");
}

TEST_F(ShellTest, CaretConcatenation) {
  env_.SetString("dir", "/usr/rob");
  EXPECT_EQ(Run("echo $dir/^'Close!'"), "/usr/rob/Close!\n");
  EXPECT_EQ(Run("echo a^b"), "ab\n");
}

TEST_F(ShellTest, Variables) {
  EXPECT_EQ(Run("x=hello; echo $x"), "hello\n");
  EXPECT_EQ(Run("x=one two three"), "");  // scoped to command 'two'
  EXPECT_EQ(Run("echo $undefined end"), "end\n");  // empty list vanishes
}

TEST_F(ShellTest, ListVariables) {
  Run("echo a b c");
  env_.Set("list", {"p", "q", "r"});
  EXPECT_EQ(Run("echo $list"), "p q r\n");
  EXPECT_EQ(Run("echo $#list"), "3\n");
  EXPECT_EQ(Run("echo x$list"), "xp xq xr\n");  // scalar distributes
}

TEST_F(ShellTest, MultipleAssignmentsOneCommand) {
  // This is what `eval `{help/parse -c}` produces.
  EXPECT_EQ(Run("file=/a/b.c dir=/a id=n line=213\necho $file $id $line"),
            "/a/b.c n 213\n");
}

TEST_F(ShellTest, ScopedAssignment) {
  env_.SetString("v", "outer");
  EXPECT_EQ(Run("v=inner echo $v"), "inner\n");
  EXPECT_EQ(env_.GetString("v"), "outer");  // restored
}

TEST_F(ShellTest, CommandSubstitution) {
  EXPECT_EQ(Run("x=`{echo deep}; echo got $x"), "got deep\n");
  EXPECT_EQ(Run("echo `{echo a b; echo c}"), "a b c\n");  // tokenized
}

TEST_F(ShellTest, Pipeline) {
  vfs_.WriteFile("/f", "banana\napple\ncherry\n");
  EXPECT_EQ(Run("cat /f | sort | sed 1q"), "apple\n");
}

TEST_F(ShellTest, PipeContinuesAcrossNewline) {
  vfs_.WriteFile("/f", "x\ny\n");
  EXPECT_EQ(Run("cat /f |\nsed 1q"), "x\n");
}

TEST_F(ShellTest, Redirection) {
  Run("echo stored > /out");
  EXPECT_EQ(vfs_.ReadFile("/out").value(), "stored\n");
  Run("echo more >> /out");
  EXPECT_EQ(vfs_.ReadFile("/out").value(), "stored\nmore\n");
  EXPECT_EQ(Run("cat < /out"), "stored\nmore\n");
}

TEST_F(ShellTest, BlockWithRedirection) {
  Run("{\necho one\necho two\n} > /blk");
  EXPECT_EQ(vfs_.ReadFile("/blk").value(), "one\ntwo\n");
}

TEST_F(ShellTest, BlockSharesEnvironment) {
  Run("{ x=shared }\necho $x");
  EXPECT_EQ(env_.GetString("x"), "shared");
}

TEST_F(ShellTest, Eval) {
  EXPECT_EQ(Run("eval echo one two"), "one two\n");
  EXPECT_EQ(Run("cmd='echo hi'; eval $cmd"), "hi\n");
}

TEST_F(ShellTest, ExitStopsScript) {
  int status = 0;
  EXPECT_EQ(Run("echo before\nexit 3\necho after", &status), "before\n");
  EXPECT_EQ(status, 3);
}

TEST_F(ShellTest, CdChangesContext) {
  vfs_.MkdirAll("/usr/rob");
  vfs_.WriteFile("/usr/rob/f", "found\n");
  EXPECT_EQ(Run("cd /usr/rob\ncat f"), "found\n");
  int status;
  Run("cd /nonexistent", &status);
  EXPECT_EQ(status, 1);
}

TEST_F(ShellTest, PositionalArgs) {
  EXPECT_EQ(Run("echo $1 $2 and $*", nullptr, "/", {"alpha", "beta"}),
            "alpha beta and alpha beta\n");
}

TEST_F(ShellTest, CommentsIgnored) {
  EXPECT_EQ(Run("# a comment\necho ok # trailing"), "ok\n");
}

TEST_F(ShellTest, Glob) {
  vfs_.MkdirAll("/src");
  vfs_.WriteFile("/src/a.c", "");
  vfs_.WriteFile("/src/b.c", "");
  vfs_.WriteFile("/src/a.h", "");
  EXPECT_EQ(Run("echo *.c", nullptr, "/src"), "/src/a.c /src/b.c\n");
  EXPECT_EQ(Run("echo /src/*.h"), "/src/a.h\n");
  EXPECT_EQ(Run("echo *.zz", nullptr, "/src"), "*.zz\n");  // no match: literal
  EXPECT_EQ(Run("echo '*.c'", nullptr, "/src"), "*.c\n");  // quoted: no glob
}

TEST_F(ShellTest, GlobIntermediateComponent) {
  vfs_.MkdirAll("/a/one");
  vfs_.MkdirAll("/a/two");
  vfs_.WriteFile("/a/one/f", "");
  vfs_.WriteFile("/a/two/f", "");
  EXPECT_EQ(Run("echo /a/*/f"), "/a/one/f /a/two/f\n");
}

TEST_F(ShellTest, UnknownCommandReportsNotFound) {
  int status;
  Run("nosuchcmd", &status);
  EXPECT_EQ(status, 127);
  EXPECT_NE(last_err_.find("file does not exist"), std::string::npos);
}

TEST_F(ShellTest, ScriptsRunFromVfs) {
  vfs_.WriteFile("/bin/greet", "echo hello $1\n");
  EXPECT_EQ(Run("greet rob"), "hello rob\n");
}

TEST_F(ShellTest, ScriptsSeeTheirArgsNotParents) {
  vfs_.WriteFile("/bin/inner", "echo inner $*\n");
  vfs_.WriteFile("/bin/outer", "inner wrapped\n");
  EXPECT_EQ(Run("outer a b"), "inner wrapped\n");
}

TEST_F(ShellTest, RelativeCommandResolution) {
  vfs_.MkdirAll("/work");
  vfs_.WriteFile("/work/tool", "echo local tool\n");
  // cwd first…
  EXPECT_EQ(Run("tool", nullptr, "/work"), "local tool\n");
  // …then /bin, including multi-element names like help/rcc.
  vfs_.MkdirAll("/bin/sub");
  vfs_.WriteFile("/bin/sub/cmd", "echo from bin\n");
  EXPECT_EQ(Run("sub/cmd", nullptr, "/work"), "from bin\n");
}

TEST_F(ShellTest, RecursionGuard) {
  vfs_.WriteFile("/bin/loop", "loop\n");
  int status;
  Run("loop", &status);
  EXPECT_NE(status, 0);
}

TEST_F(ShellTest, ParseErrors) {
  for (const char* bad : {"echo 'unterminated", "cat |", "{ echo x", "echo `(x)",
                          "echo $", "> onlyredir"}) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    auto r = shell_.Run(bad, &env_, "/", {}, io);
    EXPECT_FALSE(r.ok()) << "expected parse error: " << bad;
  }
}

TEST_F(ShellTest, GlobMatchUnit) {
  EXPECT_TRUE(GlobMatch("*.c", "exec.c"));
  EXPECT_FALSE(GlobMatch("*.c", "exec.h"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_TRUE(GlobMatch("[a-c]x", "bx"));
  EXPECT_FALSE(GlobMatch("[^a-c]x", "bx"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXbYc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "aXbY"));
}

// The paper's decl script must parse (spelling adapted to this shell).
TEST_F(ShellTest, DeclScriptParses) {
  const char* decl =
      "eval `{help/parse -c}\n"
      "x=`{cat /mnt/help/new/ctl}\n"
      "{\n"
      "echo tag $dir/^' decl Close!'\n"
      "} > /mnt/help/$x/ctl\n"
      "cpp $cppflags $file |\n"
      "help/rcc -w -g -i$id -n$line -f$file |\n"
      "sed 1q > /mnt/help/$x/bodyapp\n";
  auto parsed = ParseShell(decl);
  EXPECT_TRUE(parsed.ok()) << parsed.message();
  EXPECT_EQ(parsed.value()->lines.size(), 4u);
}

}  // namespace
}  // namespace help
