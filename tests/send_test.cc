// Send: the traditional-shell-window extension. A New window + typing + Send
// behaves like a typescript: command output appends to the same window, not
// to Errors.
#include <gtest/gtest.h>

#include "src/core/help.h"

namespace help {
namespace {

class SendTest : public ::testing::Test {
 protected:
  SendTest() {
    h_.vfs().MkdirAll("/work");
    h_.vfs().WriteFile("/work/notes", "alpha\nbeta\n");
  }
  Help h_;
};

TEST_F(SendTest, RunsLineUnderCaretAppendsOutput) {
  Window* w = h_.CreateWindow("shell Close!");
  h_.SetCurrent(&w->body());
  h_.Type("echo hello shell window");
  // Caret sits at the end of the typed line; Send runs that line.
  ASSERT_TRUE(h_.ExecuteText("Send", w).ok());
  std::string body = w->body().text->Utf8();
  EXPECT_NE(body.find("echo hello shell window\nhello shell window\n"),
            std::string::npos)
      << body;
  // Output stayed in the window; no Errors window appeared.
  EXPECT_EQ(h_.errors_window(), nullptr);
}

TEST_F(SendTest, NonNullSelectionRunsExactly) {
  Window* w = h_.CreateWindow("shell Close!");
  w->body().text->SetAll("echo one\necho two\n");
  w->Relayout();
  // Select only "echo one".
  w->body().sel = {0, 8};
  h_.SetCurrent(&w->body());
  ASSERT_TRUE(h_.ExecuteText("Send", w).ok());
  std::string body = w->body().text->Utf8();
  EXPECT_NE(body.find("one\n"), std::string::npos);
  EXPECT_EQ(body.find("two\n\ntwo"), std::string::npos);
}

TEST_F(SendTest, RunsInWindowContextDir) {
  Window* w = h_.CreateWindow("/work/notes Close!");
  w->body().text->SetAll("cat notes\n");
  w->Relayout();
  w->body().sel = {0, 0};
  h_.SetCurrent(&w->body());
  ASSERT_TRUE(h_.ExecuteText("Send", w).ok());
  EXPECT_NE(w->body().text->Utf8().find("alpha\nbeta\n"), std::string::npos);
}

TEST_F(SendTest, ErrorsAppendToWindowToo) {
  Window* w = h_.CreateWindow("shell Close!");
  h_.SetCurrent(&w->body());
  h_.Type("nosuchcommand");
  ASSERT_TRUE(h_.ExecuteText("Send", w).ok());
  EXPECT_NE(w->body().text->Utf8().find("file does not exist"), std::string::npos);
}

TEST_F(SendTest, CaretMovesToEndForNextCommand) {
  Window* w = h_.CreateWindow("shell Close!");
  h_.SetCurrent(&w->body());
  h_.Type("echo first");
  h_.ExecuteText("Send", w);
  h_.Type("echo second");
  h_.ExecuteText("Send", w);
  std::string body = w->body().text->Utf8();
  EXPECT_NE(body.find("first\necho second\nsecond\n"), std::string::npos) << body;
}

TEST_F(SendTest, EmptySelectionOnEmptyLineErrors) {
  Window* w = h_.CreateWindow("shell Close!");
  h_.SetCurrent(&w->body());
  EXPECT_FALSE(h_.ExecuteText("Send", w).ok());
}

}  // namespace
}  // namespace help
