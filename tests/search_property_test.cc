// Differential property tests for the zero-copy streaming search layer.
//
// The oracle is the plain Pike VM running over a single materialized copy of
// the document with the literal fast path disabled — no spans, no
// Boyer-Moore skip loop, no line-index candidate enumeration. The subject is
// the streaming path (StreamSearch / SearchBackward / StreamFindLiteral)
// over a Text whose gap has been parked at a random position, with the fast
// path enabled. Matches must be byte-identical, captures included.
#include "src/text/search.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/base/rune.h"
#include "src/regexp/regexp.h"
#include "src/text/text.h"

namespace help {
namespace {

// Deterministic PRNG so failures reproduce (same idiom as text_property_test).
struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
  uint32_t Below(uint32_t n) { return n ? Next() % n : 0; }
};

// Small alphabet with repeats so random patterns actually hit, plus newlines
// (anchors), spaces, and multi-byte runes (span/UTF-8 boundaries).
constexpr Rune kAlphabet[] = {'a', 'b', 'c', 'a', 'b', '\n', ' ', 0x3B4, 0x20AC};

RuneString RandomDoc(Lcg& rng, size_t max_len) {
  RuneString doc;
  size_t n = rng.Below(static_cast<uint32_t>(max_len) + 1);
  for (size_t i = 0; i < n; i++) {
    doc.push_back(kAlphabet[rng.Below(sizeof(kAlphabet) / sizeof(kAlphabet[0]))]);
  }
  return doc;
}

// A grammar of patterns that always compile: literal runs, '.', classes,
// repetitions, groups, alternation, and anchors.
std::string RandomPattern(Lcg& rng) {
  static const char* kAtoms[] = {"a",    "b",     "c",    "ab",   "bc",  ".",
                                 "[abc]", "[^ab]", "a*",   "b+",   "c?",  "(ab)",
                                 "(a|b)", "a|bc",  "(a)(b)", "\\n", " ",  ".*"};
  std::string p;
  if (rng.Below(5) == 0) {
    p += '^';
  }
  size_t n = 1 + rng.Below(4);
  for (size_t i = 0; i < n; i++) {
    p += kAtoms[rng.Below(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  if (rng.Below(6) == 0) {
    p += '$';
  }
  return p;
}

// Builds a Text with the given content and the gap parked at `gap_pos`:
// inserting then deleting at a position moves the gap there without changing
// the content.
Text MakeGappedText(const RuneString& content, size_t gap_pos) {
  Text t;
  t.SetAll(Utf8FromRunes(content));
  gap_pos = std::min(gap_pos, content.size());
  RuneString probe;
  probe.push_back('x');
  t.InsertNoUndo(gap_pos, probe);
  t.DeleteNoUndo(gap_pos, 1);
  EXPECT_EQ(t.size(), content.size());
  return t;
}

void ExpectSameMatch(const std::optional<Regexp::MatchResult>& got,
                     const std::optional<Regexp::MatchResult>& want,
                     const std::string& what) {
  ASSERT_EQ(got.has_value(), want.has_value()) << what;
  if (!want.has_value()) {
    return;
  }
  EXPECT_EQ(got->begin, want->begin) << what;
  EXPECT_EQ(got->end, want->end) << what;
  ASSERT_EQ(got->groups.size(), want->groups.size()) << what;
  for (size_t g = 0; g < want->groups.size(); g++) {
    EXPECT_EQ(got->groups[g], want->groups[g]) << what << " group " << g;
  }
}

// Restores the fast-path toggle even when an assertion bails out of a test.
struct FastPathGuard {
  explicit FastPathGuard(bool on) { Regexp::SetLiteralFastPathEnabled(on); }
  ~FastPathGuard() { Regexp::SetLiteralFastPathEnabled(true); }
};

// Oracle: last match (greedy at each successful start) with end <= limit,
// found by probing MatchAt at every position of the materialized copy.
std::optional<Regexp::MatchResult> RefBackward(const Regexp& re, RuneStringView doc,
                                               size_t limit) {
  std::optional<Regexp::MatchResult> best;
  for (size_t p = 0; p <= doc.size(); p++) {
    auto m = re.MatchAt(doc, p);
    if (m && m->end <= limit && (!best || m->begin >= best->begin)) {
      best = m;
    }
  }
  return best;
}

TEST(SearchProperty, StreamingMatchesMaterialized) {
  constexpr int kCases = 10000;
  for (int c = 0; c < kCases; c++) {
    Lcg rng(static_cast<uint32_t>(c));
    RuneString content = RandomDoc(rng, 160);
    std::string pattern = RandomPattern(rng);
    auto re = Regexp::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    size_t gap_pos = rng.Below(static_cast<uint32_t>(content.size()) + 1);
    Text t = MakeGappedText(content, gap_pos);
    size_t start = rng.Below(static_cast<uint32_t>(content.size()) + 2);

    std::optional<Regexp::MatchResult> want;
    {
      FastPathGuard off(false);
      if (start <= content.size()) {
        want = re.value().Search(RuneStringView(content), start);
      }
    }
    auto got = StreamSearch(t, re.value(), start);

    std::string what = "case " + std::to_string(c) + ": /" + pattern + "/ start " +
                       std::to_string(start) + " gap " + std::to_string(gap_pos) +
                       " doc \"" + Utf8FromRunes(content) + "\"";
    ExpectSameMatch(got, want, what);
  }
}

TEST(SearchProperty, BackwardMatchesMatchAtSweep) {
  constexpr int kCases = 2500;
  for (int c = 0; c < kCases; c++) {
    Lcg rng(0x9000u + static_cast<uint32_t>(c));
    RuneString content = RandomDoc(rng, 120);
    std::string pattern = RandomPattern(rng);
    auto re = Regexp::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    size_t gap_pos = rng.Below(static_cast<uint32_t>(content.size()) + 1);
    Text t = MakeGappedText(content, gap_pos);
    size_t limit = rng.Below(static_cast<uint32_t>(content.size()) + 2);

    std::optional<Regexp::MatchResult> want;
    {
      FastPathGuard off(false);
      want = RefBackward(re.value(), RuneStringView(content),
                         std::min(limit, content.size()));
    }
    auto got = StreamSearchBackward(t, re.value(), limit);

    std::string what = "case " + std::to_string(c) + ": -/" + pattern + "/ limit " +
                       std::to_string(limit) + " gap " + std::to_string(gap_pos) +
                       " doc \"" + Utf8FromRunes(content) + "\"";
    ExpectSameMatch(got, want, what);
  }
}

TEST(SearchProperty, LiteralFinderMatchesRuneStringFind) {
  constexpr int kCases = 4000;
  for (int c = 0; c < kCases; c++) {
    Lcg rng(0x5eedu + static_cast<uint32_t>(c));
    RuneString content = RandomDoc(rng, 200);
    // Half the needles are slices of the document (guaranteed hits at some
    // offset), half are random (mostly misses).
    RuneString needle;
    if (!content.empty() && rng.Below(2) == 0) {
      size_t off = rng.Below(static_cast<uint32_t>(content.size()));
      size_t len = 1 + rng.Below(std::min<uint32_t>(8, static_cast<uint32_t>(content.size() - off)));
      needle = content.substr(off, len);
    } else {
      needle = RandomDoc(rng, 4);
      if (needle.empty()) {
        needle.push_back('a');
      }
    }
    size_t gap_pos = rng.Below(static_cast<uint32_t>(content.size()) + 1);
    Text t = MakeGappedText(content, gap_pos);
    size_t start = rng.Below(static_cast<uint32_t>(content.size()) + 2);

    size_t want = content.find(needle, start);
    size_t got = StreamFindLiteral(t, needle, start);
    EXPECT_EQ(got, want) << "case " << c << ": needle \"" << Utf8FromRunes(needle)
                         << "\" start " << start << " gap " << gap_pos << " doc \""
                         << Utf8FromRunes(content) << "\"";
  }
}

// The gap parked in the middle of the needle is the adversarial case for the
// span-aware Boyer-Moore loop: exercise every gap position explicitly.
TEST(SearchProperty, GapStraddlingLiteral) {
  const RuneString needle = RunesFromUtf8("needle\xCE\xB4x");
  const RuneString doc = RunesFromUtf8("haystack hay needle\xCE\xB4x stack");
  size_t expect = doc.find(needle);
  ASSERT_NE(expect, RuneString::npos);
  for (size_t gap = 0; gap <= doc.size(); gap++) {
    Text t = MakeGappedText(doc, gap);
    EXPECT_EQ(StreamFindLiteral(t, needle, 0), expect) << "gap " << gap;
    auto re = Regexp::Compile("needle\xCE\xB4x");
    ASSERT_TRUE(re.ok());
    auto m = StreamSearch(t, re.value(), 0);
    ASSERT_TRUE(m.has_value()) << "gap " << gap;
    EXPECT_EQ(m->begin, expect) << "gap " << gap;
    EXPECT_EQ(m->end, expect + needle.size()) << "gap " << gap;
  }
}

TEST(SearchProperty, AnchoredAcrossGapPositions) {
  const RuneString doc = RunesFromUtf8("one\ntwo\nthree\nfour two\ntwo five\n");
  auto re = Regexp::Compile("^two");
  ASSERT_TRUE(re.ok());
  RuneString needle = RunesFromUtf8("two");
  for (size_t gap = 0; gap <= doc.size(); gap++) {
    Text t = MakeGappedText(doc, gap);
    for (size_t start = 0; start <= doc.size(); start++) {
      FastPathGuard off(false);
      auto want = re.value().Search(RuneStringView(doc), start);
      Regexp::SetLiteralFastPathEnabled(true);
      auto got = StreamSearch(t, re.value(), start);
      ExpectSameMatch(got, want,
                      "gap " + std::to_string(gap) + " start " + std::to_string(start));
    }
  }
}

}  // namespace
}  // namespace help
