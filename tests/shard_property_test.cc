// Property test for PR 10's sharded dispatch (DESIGN.md §17): K sessions,
// each appending a deterministic pattern to its OWN window over a real
// socket, while reader sessions continuously re-read every window's body.
// Window writes run concurrently under per-window shards (epoch shared +
// shard exclusive), so the invariants under test are exactly what sharding
// must not break:
//
//   1. Every snapshot a reader sees is byte-exact: a prefix of that window's
//      deterministic append stream — never torn mid-chunk, never
//      interleaved with another window's bytes.
//   2. After the writers join, every body equals its full expected stream.
//
// The same workload runs again with set_disable_sharding(true) — the escape
// hatch is the differential oracle: identical final bytes, zero
// lock.window_acquires. Run under TSan (the CI sanitizer matrix builds this
// suite with -DHELP_SANITIZE=thread) the first phase is also the data-race
// probe for the whole two-level lock hierarchy.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"

namespace help {
namespace {

constexpr int kWindows = 4;
constexpr int kChunks = 120;

std::string SockPath(const char* name) {
  return StrFormat("%s.%d.sock", name, getpid());
}

// Deterministic per-window chunk: identifies the window and the round, with
// a multi-byte rune so appends exercise the rune/byte boundary machinery.
std::string Chunk(int win, int round) {
  return StrFormat("w%d.%03d¶", win, round);
}

std::string Expected(int win, int upto) {
  std::string out;
  for (int i = 0; i < upto; i++) {
    out += Chunk(win, i);
  }
  return out;
}

struct Client {
  std::unique_ptr<SocketTransport> sock;
  std::unique_ptr<NinepClient> ninep;
};

Client Connect(const std::string& path, const std::string& uname) {
  Client c;
  auto tr = SocketTransport::ConnectUnix(path);
  EXPECT_TRUE(tr.ok());
  c.sock = std::move(tr.value());
  c.ninep = std::make_unique<NinepClient>(c.sock->AsTransport());
  EXPECT_TRUE(c.ninep->Connect(uname).ok());
  return c;
}

// One full run: create kWindows windows, fan out one writer session per
// window plus reader sessions sweeping all windows, join, verify finals.
void RunWorkload(const std::string& path) {
  // Window setup on its own session.
  Client setup = Connect(path, "setup");
  std::vector<std::string> bases(kWindows);
  for (int w = 0; w < kWindows; w++) {
    auto ctl = setup.ninep->ReadFile("/mnt/help/new/ctl");
    ASSERT_TRUE(ctl.ok());
    bases[w] = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // Writers: each session appends its window's chunks in order through an
  // open bodyapp fid — every WriteFid is a window-classified Twrite.
  std::vector<std::thread> writers;
  for (int w = 0; w < kWindows; w++) {
    writers.emplace_back([&, w] {
      Client c = Connect(path, StrFormat("writer%d", w));
      auto fid = c.ninep->WalkFid(bases[w] + "/bodyapp");
      ASSERT_TRUE(fid.ok());
      ASSERT_TRUE(c.ninep->OpenFid(fid.value(), kOwrite).ok());
      for (int i = 0; i < kChunks; i++) {
        auto r = c.ninep->WriteFid(fid.value(), 0, Chunk(w, i));
        ASSERT_TRUE(r.ok()) << "window " << w << " chunk " << i << ": "
                            << r.status().message();
      }
    });
  }

  // Readers: two sessions sweep every window's body until the writers are
  // done. Each snapshot must be an exact prefix of the expected stream.
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; rdr++) {
    readers.emplace_back([&, rdr] {
      Client c = Connect(path, StrFormat("reader%d", rdr));
      std::vector<uint32_t> fids(kWindows);
      std::vector<std::string> expected(kWindows);
      for (int w = 0; w < kWindows; w++) {
        auto fid = c.ninep->WalkFid(bases[w] + "/body");
        ASSERT_TRUE(fid.ok());
        ASSERT_TRUE(c.ninep->OpenFid(fid.value(), kOread).ok());
        fids[w] = fid.value();
        expected[w] = Expected(w, kChunks);
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (int w = 0; w < kWindows; w++) {
          auto got = c.ninep->ReadFid(fids[w], 0, 8192);
          ASSERT_TRUE(got.ok());
          const std::string& body = got.value();
          if (body != expected[w].substr(0, body.size())) {
            violations.fetch_add(1);
            ADD_FAILURE() << "window " << w << " snapshot is not a prefix: "
                          << body.substr(0, 64);
            return;
          }
        }
      }
    });
  }

  for (auto& t : writers) {
    t.join();
  }
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  ASSERT_EQ(violations.load(), 0);

  // Final bytes, read through a fresh session.
  Client check = Connect(path, "check");
  for (int w = 0; w < kWindows; w++) {
    auto body = check.ninep->ReadFile(bases[w] + "/body");
    ASSERT_TRUE(body.ok());
    ASSERT_EQ(body.value(), Expected(w, kChunks)) << "window " << w;
  }
}

TEST(ShardProperty, CrossWindowWritersAndReadersStayByteExact) {
  Help::Options hopt;
  hopt.install_userland = false;
  Help h(hopt);
  NinepServer& srv = h.ninep();
  ListenerOptions lopt;
  lopt.workers = 6;
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("shardprop1");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  RunWorkload(path);
  // The window path actually engaged: writers (and shard-held reads) went
  // through per-window locks, not the epoch-exclusive fallback.
  EXPECT_GT(srv.metrics().lock_window_acquires(), 0u);

  lis.Stop();
  ::unlink(path.c_str());
}

// Differential oracle: the identical workload with the sharding escape
// hatch thrown must produce the identical bytes while never touching a
// window shard.
TEST(ShardProperty, DisableShardingOracleMatches) {
  Help::Options hopt;
  hopt.install_userland = false;
  Help h(hopt);
  NinepServer& srv = h.ninep();
  srv.set_disable_sharding(true);
  ListenerOptions lopt;
  lopt.workers = 6;
  NinepListener lis(&srv, lopt);
  std::string path = SockPath("shardprop2");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  RunWorkload(path);
  EXPECT_EQ(srv.metrics().lock_window_acquires(), 0u);

  lis.Stop();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace help
