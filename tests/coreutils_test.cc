// Userland tests: each /bin command plus mk (forward and reverse modes).
#include <gtest/gtest.h>

#include "src/shell/coreutils.h"
#include "src/shell/mk.h"
#include "src/shell/shell.h"

namespace help {
namespace {

class CoreutilsTest : public ::testing::Test {
 protected:
  CoreutilsTest() : shell_(&vfs_, &registry_, &procs_) {
    RegisterCoreutils(&vfs_, &registry_);
    RegisterMk(&vfs_, &registry_);
  }

  std::string Run(std::string_view src, int* status = nullptr, std::string cwd = "/") {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    auto r = shell_.Run(src, &env_, std::move(cwd), {}, io);
    EXPECT_TRUE(r.ok()) << r.message();
    if (status != nullptr) {
      *status = r.ok() ? r.value() : -1;
    }
    last_err_ = err;
    return out;
  }

  Vfs vfs_;
  CommandRegistry registry_;
  ProcTable procs_;
  Env env_;
  Shell shell_;
  std::string last_err_;
};

TEST_F(CoreutilsTest, CatFilesAndStdin) {
  vfs_.WriteFile("/a", "A");
  vfs_.WriteFile("/b", "B");
  EXPECT_EQ(Run("cat /a /b"), "AB");
  EXPECT_EQ(Run("echo piped | cat"), "piped\n");
  int status;
  Run("cat /ghost", &status);
  EXPECT_EQ(status, 1);
}

TEST_F(CoreutilsTest, CpAndMv) {
  vfs_.WriteFile("/src", "data");
  Run("cp /src /dst");
  EXPECT_EQ(vfs_.ReadFile("/dst").value(), "data");
  vfs_.MkdirAll("/dir");
  Run("cp /src /dir");  // copy into directory keeps the base name
  EXPECT_EQ(vfs_.ReadFile("/dir/src").value(), "data");
  Run("mv /dst /moved");
  EXPECT_FALSE(vfs_.Walk("/dst").ok());
  EXPECT_EQ(vfs_.ReadFile("/moved").value(), "data");
}

TEST_F(CoreutilsTest, LsFormats) {
  vfs_.MkdirAll("/d/sub");
  vfs_.WriteFile("/d/f", "1234");
  EXPECT_EQ(Run("ls /d"), "/d/f\n/d/sub/\n");
  std::string longform = Run("ls -l /d");
  EXPECT_NE(longform.find("4"), std::string::npos);
  EXPECT_NE(longform.find("d "), std::string::npos);
}

TEST_F(CoreutilsTest, GrepFlagsAndExit) {
  vfs_.WriteFile("/f", "alpha\nbeta\ngamma\nbetatron\n");
  EXPECT_EQ(Run("grep beta /f"), "beta\nbetatron\n");
  EXPECT_EQ(Run("grep -n ^beta /f"), "2: beta\n4: betatron\n");
  EXPECT_EQ(Run("grep -c alpha /f"), "1\n");
  EXPECT_EQ(Run("grep -v a /f"), "");
  int status;
  Run("grep zebra /f", &status);
  EXPECT_EQ(status, 1);
  Run("grep '(' /f", &status);
  EXPECT_EQ(status, 2);  // bad regexp
  // Multiple files get labels.
  vfs_.WriteFile("/g", "beta\n");
  EXPECT_EQ(Run("grep beta /f /g"), "/f:beta\n/f:betatron\n/g:beta\n");
}

TEST_F(CoreutilsTest, SedOneQuit) {
  vfs_.WriteFile("/f", "first\nsecond\nthird\n");
  EXPECT_EQ(Run("sed 1q /f"), "first\n");
  EXPECT_EQ(Run("sed 2q /f"), "first\nsecond\n");
  EXPECT_EQ(Run("cat /f | sed 1q"), "first\n");
}

TEST_F(CoreutilsTest, SedSubstitute) {
  vfs_.WriteFile("/f", "aaa bbb aaa\n");
  EXPECT_EQ(Run("sed s/aaa/X/ /f"), "X bbb aaa\n");
  EXPECT_EQ(Run("sed s/aaa/X/g /f"), "X bbb X\n");
}

TEST_F(CoreutilsTest, WcSortUniqHeadTail) {
  vfs_.WriteFile("/f", "b\na\nb\n");
  EXPECT_EQ(Run("wc -l /f"), "3\n");
  EXPECT_EQ(Run("sort /f"), "a\nb\nb\n");
  EXPECT_EQ(Run("sort /f | uniq"), "a\nb\n");
  EXPECT_EQ(Run("sort -r /f | sed 1q"), "b\n");
  vfs_.WriteFile("/n", "1\n2\n3\n4\n5\n");
  EXPECT_EQ(Run("head -n 2 /n"), "1\n2\n");
  EXPECT_EQ(Run("tail -n 2 /n"), "4\n5\n");
}

TEST_F(CoreutilsTest, TouchMkdirRm) {
  Run("mkdir /made/deep");
  EXPECT_TRUE(vfs_.Walk("/made/deep").value()->dir());
  Run("touch /made/f");
  EXPECT_TRUE(vfs_.Walk("/made/f").ok());
  uint64_t t1 = vfs_.Stat("/made/f").value().mtime;
  Run("touch /made/f");
  EXPECT_GT(vfs_.Stat("/made/f").value().mtime, t1);
  Run("rm /made/f");
  EXPECT_FALSE(vfs_.Walk("/made/f").ok());
}

TEST_F(CoreutilsTest, BasenameDirnameDate) {
  EXPECT_EQ(Run("basename /a/b/c.c"), "c.c\n");
  EXPECT_EQ(Run("dirname /a/b/c.c"), "/a/b\n");
  // The deterministic clock starts on Apr 16 1991.
  EXPECT_NE(Run("date").find("Apr"), std::string::npos);
  EXPECT_NE(Run("date").find("1991"), std::string::npos);
}

TEST_F(CoreutilsTest, FormatDateKnownInstant) {
  EXPECT_EQ(FormatDate(671829974), "Tue Apr 16 19:26:14 EDT 1991");
  EXPECT_EQ(FormatDate(0), "Thu Jan 1 00:00:00 EDT 1970");
}

TEST_F(CoreutilsTest, PsAndAdb) {
  ProcImage img = MakePaperCrashImage();
  procs_.Add(img, &vfs_);
  std::string ps = Run("ps");
  EXPECT_NE(ps.find("176153"), std::string::npos);
  EXPECT_NE(ps.find("Broken"), std::string::npos);
  EXPECT_EQ(Run("adb broke"), "176153 help\n");
  std::string stack = Run("adb 176153 stack");
  EXPECT_NE(stack.find("strchr.s:34"), std::string::npos);
  EXPECT_NE(stack.find("called from strlen+0x1c"), std::string::npos);
  EXPECT_EQ(Run("adb 176153 srcdir"), "/usr/rob/src/help\n");
  std::string regs = Run("adb 176153 regs");
  EXPECT_NE(regs.find("0x18df4"), std::string::npos);
  int status;
  Run("adb 1 stack", &status);
  EXPECT_EQ(status, 1);
  // /proc files published.
  EXPECT_NE(vfs_.ReadFile("/proc/176153/status").value().find("Broken"),
            std::string::npos);
}

// --- mk ---------------------------------------------------------------------

TEST_F(CoreutilsTest, MkBuildsOutOfDateOnly) {
  vfs_.MkdirAll("/p");
  vfs_.WriteFile("/p/in", "source");
  vfs_.WriteFile("/p/mkfile", "out: in\n\tcp in out\n");
  EXPECT_EQ(Run("mk", nullptr, "/p"), "cp in out\n");
  EXPECT_EQ(vfs_.ReadFile("/p/out").value(), "source");
  // Up to date now.
  EXPECT_NE(Run("mk", nullptr, "/p").find("up to date"), std::string::npos);
  // Touch the source: rebuilds.
  Run("touch /p/in");
  EXPECT_EQ(Run("mk", nullptr, "/p"), "cp in out\n");
}

TEST_F(CoreutilsTest, MkTransitiveChain) {
  vfs_.MkdirAll("/p");
  vfs_.WriteFile("/p/a", "x");
  vfs_.WriteFile("/p/mkfile",
                 "c: b\n\tcp b c\n"
                 "b: a\n\tcp a b\n");
  EXPECT_EQ(Run("mk c", nullptr, "/p"), "cp a b\ncp b c\n");
  EXPECT_EQ(vfs_.ReadFile("/p/c").value(), "x");
}

TEST_F(CoreutilsTest, MkVariables) {
  vfs_.MkdirAll("/p");
  vfs_.WriteFile("/p/a", "1");
  vfs_.WriteFile("/p/b", "2");
  vfs_.WriteFile("/p/mkfile", "SRC=a b\nall: $SRC\n\tcat $SRC > all.out\n");
  Run("mk", nullptr, "/p");
  EXPECT_EQ(vfs_.ReadFile("/p/all.out").value(), "12");
}

TEST_F(CoreutilsTest, MkMissingRuleAndCycle) {
  vfs_.MkdirAll("/p");
  vfs_.WriteFile("/p/mkfile", "a: b\n\techo never\nb: a\n\techo never\n");
  int status;
  Run("mk a", &status, "/p");
  EXPECT_EQ(status, 1);
  EXPECT_NE(last_err_.find("cycle"), std::string::npos);
  vfs_.WriteFile("/p/mkfile", "a: missing\n\techo x\n");
  Run("mk a", &status, "/p");
  EXPECT_EQ(status, 1);
  EXPECT_NE(last_err_.find("don't know how to make"), std::string::npos);
}

// The paper's future-work proposal: build forward from modified sources.
TEST_F(CoreutilsTest, MkReverseRebuildsStaleTargetsOnly) {
  vfs_.MkdirAll("/p");
  vfs_.WriteFile("/p/x.c", "cx");
  vfs_.WriteFile("/p/y.c", "cy");
  vfs_.WriteFile("/p/mkfile",
                 "x.o: x.c\n\tcp x.c x.o\n"
                 "y.o: y.c\n\tcp y.c y.o\n");
  Run("mk x.o y.o", nullptr, "/p");
  // Modify only y.c; reverse mk must rebuild y.o and not x.o.
  Run("touch /p/y.c");
  std::string out = Run("mk -r", nullptr, "/p");
  EXPECT_EQ(out, "cp y.c y.o\n");
  // Nothing stale: says so.
  EXPECT_NE(Run("mk -r", nullptr, "/p").find("up to date"), std::string::npos);
}

TEST_F(CoreutilsTest, MkRecipeFailureStops) {
  vfs_.MkdirAll("/p");
  vfs_.WriteFile("/p/in", "s");
  vfs_.WriteFile("/p/mkfile", "out: in\n\tfalse\n\tcp in out\n");
  int status;
  Run("mk", &status, "/p");
  EXPECT_EQ(status, 1);
  EXPECT_FALSE(vfs_.Walk("/p/out").ok());
}

TEST_F(CoreutilsTest, ParseMkfileStructure) {
  auto mk = ParseMkfile("V=1\nt: d1 d2\n\tr1\n\tr2\n\n# comment\nu:\n\tr3\n");
  ASSERT_TRUE(mk.ok());
  ASSERT_EQ(mk.value().rules.size(), 2u);
  EXPECT_EQ(mk.value().rules[0].target, "t");
  EXPECT_EQ(mk.value().rules[0].deps, (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(mk.value().rules[0].recipe, (std::vector<std::string>{"r1", "r2"}));
  EXPECT_EQ(mk.value().vars.at("V"), "1");
  EXPECT_FALSE(ParseMkfile("\trecipe without rule\n").ok());
}

}  // namespace
}  // namespace help
