#include "src/base/strings.h"

#include <gtest/gtest.h>

#include "src/base/status.h"

namespace help {
namespace {

TEST(Tokenize, BasicAndRuns) {
  EXPECT_EQ(Tokenize("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Tokenize("  \t\n "), (std::vector<std::string>{}));
  EXPECT_EQ(Tokenize("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(Tokenize("a:b:c", ":"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x\n", '\n'), (std::vector<std::string>{"x", ""}));
}

TEST(Join, Inverse) {
  std::vector<std::string> parts = {"tag", "body", "ctl"};
  EXPECT_EQ(Join(parts, "/"), "tag/body/ctl");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(TrimSpace, AllSides) {
  EXPECT_EQ(TrimSpace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimSpace(""), "");
  EXPECT_EQ(TrimSpace(" \t "), "");
}

TEST(Prefixes, Suffixes) {
  EXPECT_TRUE(HasPrefix("Close!", "Close"));
  EXPECT_FALSE(HasPrefix("Close", "Close!"));
  EXPECT_TRUE(HasSuffix("Close!", "!"));
  EXPECT_TRUE(HasSuffix("", ""));
  EXPECT_FALSE(HasSuffix("a", "ab"));
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(ParseInt("176153"), 176153);
  EXPECT_EQ(ParseInt("0"), 0);
  EXPECT_EQ(ParseInt(""), -1);
  EXPECT_EQ(ParseInt("12x"), -1);
  EXPECT_EQ(ParseInt("-3"), -1);
  EXPECT_EQ(ParseInt("999999999999999999999999"), -1);  // overflow
}

TEST(StrFormat, Formats) {
  EXPECT_EQ(StrFormat("%d\t%s", 7, "tag"), "7\ttag");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.message(), "");
  Status err = Status::Error("file does not exist");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "file does not exist");
  EXPECT_EQ(ErrNotExist("x").message(), "x: file does not exist");
  EXPECT_EQ(ErrNotDir("d").message(), "d: not a directory");
}

TEST(ResultT, ValueAndError) {
  Result<int> v = 42;
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
  Result<int> e = Status::Error("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "nope");
}

TEST(ResultT, TakeMoves) {
  Result<std::string> r = std::string("abc");
  std::string s = r.take();
  EXPECT_EQ(s, "abc");
}

}  // namespace
}  // namespace help
