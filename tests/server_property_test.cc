// Property suite for the PR 4 reader–writer dispatch: N reader sessions
// hammer a window's `body` file with range Treads while one writer session
// appends through `bodyapp`, all over the full encode → dispatch → decode
// byte path. The body only ever grows by appending a deterministic byte
// pattern, so *every* Rread — no matter how it interleaves with the writer —
// must return bytes that match the pattern at their absolute offsets. A torn
// read (a snapshot taken mid-edit that the sequence validation failed to
// catch) shows up as a byte that disagrees with the pattern.
//
// Runs under the `property` ctest label; the TSan CI job is the other half
// of the contract (no data races between shared readers and the writer).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/server.h"
#include "src/wm/wm.h"

namespace help {
namespace {

// Byte i of the body, forever: a–z cycling, with a newline every 64 bytes so
// the line index gets exercised too. Pure ASCII, so byte offsets and rune
// offsets coincide and Utf8Substr windows line up with Tread offsets.
char PatternByte(uint64_t i) {
  return i % 64 == 63 ? '\n' : static_cast<char>('a' + (i % 26));
}

std::string PatternChunk(uint64_t start, size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; i++) {
    s.push_back(PatternByte(start + i));
  }
  return s;
}

// Deterministic per-reader offsets; the suite must not depend on rand().
struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
};

TEST(NinepServerProperty, ConcurrentBodyReadsArePrefixConsistentSnapshots) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();

  // Writer session: create one window, seed the body with the pattern
  // prefix, and keep a write-only bodyapp fid open for the append loop.
  NinepServer::SessionId wsid = srv.OpenSession();
  NinepClient writer(srv.TransportFor(wsid));
  ASSERT_TRUE(writer.Connect("writer").ok());
  auto ctl = writer.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));

  constexpr uint64_t kSeedBytes = 4096;  // readers stay inside this prefix
  constexpr int kAppends = 200;
  constexpr size_t kAppendChunk = 128;
  ASSERT_TRUE(writer.WriteFile(base + "/bodyapp", PatternChunk(0, kSeedBytes)).ok());
  auto app = writer.WalkFid(base + "/bodyapp");
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(writer.OpenFid(app.value(), kOwrite).ok());

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 400;
  std::atomic<uint64_t> read_failures{0};
  std::atomic<uint64_t> torn_reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      NinepServer::SessionId sid = srv.OpenSession();
      NinepClient c(srv.TransportFor(sid));
      if (!c.Connect(StrFormat("reader%d", r)).ok()) {
        read_failures++;
        return;
      }
      auto body = c.WalkFid(base + "/body");
      if (!body.ok() || !c.OpenFid(body.value(), kOread).ok()) {
        read_failures++;
        return;
      }
      Lcg rng(static_cast<uint32_t>(r) + 11);
      for (int i = 0; i < kReadsPerReader; i++) {
        uint64_t off = rng.Next() % kSeedBytes;
        auto d = c.ReadFid(body.value(), off, 256);
        if (!d.ok()) {
          read_failures++;
          continue;
        }
        const std::string& data = d.value();
        for (size_t j = 0; j < data.size(); j++) {
          if (data[j] != PatternByte(off + j)) {
            torn_reads++;
            break;
          }
        }
      }
      c.Clunk(body.value());
      srv.CloseSession(sid);
    });
  }

  // The writer races the readers: each append continues the pattern, so the
  // body is the pattern prefix of its length at every instant.
  uint64_t written = kSeedBytes;
  for (int i = 0; i < kAppends; i++) {
    auto n = writer.WriteFid(app.value(), 0, PatternChunk(written, kAppendChunk));
    ASSERT_TRUE(n.ok());
    written += kAppendChunk;
  }
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(torn_reads.load(), 0u);

  // Quiescent state: the whole body is the pattern prefix, the incremental
  // line index survived the concurrent traffic, and the shared path was
  // actually taken (the property is vacuous under serialized dispatch).
  auto all = writer.ReadFile(base + "/body");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), written);
  for (uint64_t i = 0; i < written; i++) {
    ASSERT_EQ(all.value()[i], PatternByte(i)) << "at offset " << i;
  }
  for (Window* w : h.AllWindows()) {
    EXPECT_TRUE(w->body().text->CheckLineIndex());
  }
  EXPECT_GT(srv.metrics().shared_reads(), 0u);
  writer.Clunk(app.value());
  srv.CloseSession(wsid);
}

}  // namespace
}  // namespace help
