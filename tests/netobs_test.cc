// PR 8 request-scoped observability: the trace id that stamps every phase of
// one request, the per-connection introspection tree under /mnt/help/net/,
// the slow-request flight recorder, and the stats/metrics parity audit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/netinfo.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"
#include "src/obs/trace.h"

namespace help {
namespace {

std::string SockPath(const char* name) {
  return StrFormat("%s.%d.sock", name, getpid());
}

bool WaitFor(const std::function<bool()>& cond, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// --- Request id --------------------------------------------------------------

TEST(RequestId, PacksCidTagSeq) {
  EXPECT_EQ(MakeRequestId(0xABCDEF, 0x1234, 0x56789A),
            (0xABCDEFull << 40) | (0x1234ull << 24) | 0x56789Aull);
  // seq starts at 1 in the listener, so a live rid is never 0.
  EXPECT_NE(MakeRequestId(0, 0, 1), 0u);
  // Fields beyond their width can't bleed into their neighbors.
  EXPECT_EQ(MakeRequestId(0x1FFFFFF, 0, 0), 0xFFFFFFull << 40);
  EXPECT_EQ(MakeRequestId(0, 0, 0x1FFFFFF), 0xFFFFFFull);
}

// --- FlightRecorder ----------------------------------------------------------

RequestRecord Rec(uint64_t total_ns) {
  RequestRecord r;
  r.rid = 1;
  r.total_ns = total_ns;
  return r;
}

TEST(FlightRecorder, KeepsTheSlowestAndRejectsBelowFloor) {
  FlightRecorder fr;
  // 2 * kSlots records, total latency ascending: only the top half stays.
  for (uint64_t i = 1; i <= 2 * FlightRecorder::kSlots; i++) {
    fr.Record(Rec(i * 1000));
  }
  EXPECT_EQ(fr.kept(), FlightRecorder::kSlots);
  EXPECT_EQ(fr.seen(), 2 * FlightRecorder::kSlots);
  std::vector<RequestRecord> snap = fr.Snapshot();
  ASSERT_EQ(snap.size(), FlightRecorder::kSlots);
  // Slowest first, and nothing from the fast half survived.
  EXPECT_EQ(snap.front().total_ns, 2 * FlightRecorder::kSlots * 1000);
  EXPECT_EQ(snap.back().total_ns, (FlightRecorder::kSlots + 1) * 1000);
  // A record at the floor can't displace anything.
  fr.Record(Rec(1000));
  EXPECT_EQ(fr.Snapshot().back().total_ns, (FlightRecorder::kSlots + 1) * 1000);
}

TEST(FlightRecorder, ThresholdGatesAndClearResets) {
  FlightRecorder fr;
  fr.set_threshold_us(10);
  EXPECT_EQ(fr.threshold_us(), 10u);
  fr.Record(Rec(5000));  // 5us: below threshold, seen but not kept
  EXPECT_EQ(fr.seen(), 1u);
  EXPECT_EQ(fr.kept(), 0u);
  fr.Record(Rec(20000));
  EXPECT_EQ(fr.kept(), 1u);
  // Fill to raise the floor, then Clear must drop it back so slow-but-not-
  // record-setting requests are kept again.
  for (uint64_t i = 0; i < 2 * FlightRecorder::kSlots; i++) {
    fr.Record(Rec((100 + i) * 1000));
  }
  fr.Clear();
  EXPECT_EQ(fr.kept(), 0u);
  fr.Record(Rec(11000));
  EXPECT_EQ(fr.kept(), 1u);
}

TEST(FlightRecorder, RenderFormatsPinned) {
  FlightRecorder fr;
  RequestRecord r;
  r.rid = 0x2A;
  r.cid = 3;
  r.tag = 7;
  r.op = NinepOp::kRead;
  r.total_ns = 10000;
  r.queue_ns = 1000;
  r.lock_ns = 2000;
  r.handler_ns = 3000;
  r.encode_ns = 4000;
  r.outbox_ns = 5000;
  fr.Record(r);
  EXPECT_EQ(fr.RenderText(),
            "rid cid tag op total_us queue_us lock_us handler_us encode_us "
            "outbox_us\n"
            "0x2a 3 7 read 10 1 2 3 4 5\n");
  EXPECT_EQ(fr.RenderCtl(), "threshold_us 0\nkept 1\nseen 1\ncapacity 64\n");
}

// --- ConnInfo rendering ------------------------------------------------------

TEST(ConnInfo, RenderFormatsPinned) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  // cid 7 has no session, so msize and fids render as 0.
  ConnInfo info(&h.ninep(), 7, "unix");
  info.AddBytesIn(10);
  info.AddBytesOut(20);
  info.AddFrameIn();
  info.AddFrameIn();
  info.RecordOp(NinepOp::kRead, 0, false);
  info.RecordQueueWait(0);
  EXPECT_EQ(info.RenderStatus(),
            "peer unix\nstate active\nmsize 0\nfids 0\nframes_in 2\n"
            "replies_out 1\nbytes_in 10\nbytes_out 20\n");
  EXPECT_EQ(info.RenderStats(),
            "op count errs p50us p99us\n"
            "read 1 0 0 0\n"
            "total_ops 1\nlatency_us 1 0 0\nqueue_wait_us 1 0 0\n"
            "writev_calls 0\nbytes_zero_copy 0\n");
  EXPECT_EQ(info.RenderClientLine(), "7 unix active 0 0 2 10 20\n");
  info.set_state(ConnState::kStalled);
  EXPECT_NE(info.RenderStatus().find("state stalled\n"), std::string::npos);
}

// --- Stats/metrics parity ----------------------------------------------------

// Every counter and histogram the /mnt/help/stats view renders is a named
// registry entry, so it must also surface in /mnt/help/metrics. The reverse
// direction is the regression tripwire: a new "net."-prefixed registry entry
// must either join the stats view or be added to the documented exceptions
// below.
TEST(StatsMetricsParity, EveryStatsEntrySurfacesInMetrics) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepMetrics& m = h.ninep().metrics();
  // Histograms only render once they hold samples; put one in each so the
  // audit covers the full enumeration.
  for (size_t i = 0; i < kNinepOpCount; i++) {
    m.RecordOp(static_cast<NinepOp>(i), 1, true);
  }
  m.RecordLockWait(1);
  m.RecordNetQueueWait(1);
  m.RecordShardWait(1);

  auto metrics = h.vfs().ReadFile("/mnt/help/metrics");
  ASSERT_TRUE(metrics.ok());
  std::vector<std::string> expected = {
      "ninep.bytes_in",  "ninep.bytes_out",         "ninep.in_flight",
      "ninep.flush_cancels", "ninep.read.shared",   "ninep.read.retry",
      "ninep.lock.wait_us",  "net.accepts",         "net.active_conns",
      "net.reaped",      "net.backpressure_stalls", "net.frame_errors",
      "net.bytes_in",    "net.bytes_out",           "net.queue_wait_us",
      "ninep.ooo_completions", "ninep.bytes_zero_copy", "ninep.bytes_staged",
      "ninep.bodyapp_coalesced", "net.writev_calls",
      "ninep.lock.window_acquires", "ninep.lock.epoch_exclusive",
      "ninep.lock.shard_wait_us",
  };
  for (size_t i = 0; i < kNinepOpCount; i++) {
    const char* op = NinepOpName(static_cast<NinepOp>(i));
    expected.push_back(StrFormat("ninep.%s.count", op));
    expected.push_back(StrFormat("ninep.%s.errors", op));
    expected.push_back(StrFormat("ninep.%s.latency_us", op));
  }
  for (const std::string& name : expected) {
    EXPECT_NE(metrics.value().find(name + " "), std::string::npos)
        << name << " missing from /mnt/help/metrics";
  }

  // Reverse: enumerate the registry's net.* entries and demand each one is
  // accounted for. net.queue_wait_us is deliberately registry-only — the
  // /mnt/help/stats byte format is pinned, and the per-connection copies live
  // under /mnt/help/net/<cid>/stats.
  std::set<std::string> stats_net = {
      "net.accepts",      "net.active_conns", "net.reaped",
      "net.backpressure_stalls", "net.frame_errors",
      "net.bytes_in",     "net.bytes_out",    "net.writev_calls"};
  std::set<std::string> registry_only = {"net.queue_wait_us"};
  for (const std::string& line : Split(metrics.value(), '\n')) {
    if (!HasPrefix(line, "net.")) {
      continue;
    }
    std::string name = Tokenize(line)[0];
    EXPECT_TRUE(stats_net.count(name) == 1 || registry_only.count(name) == 1)
        << name << " is a new net.* registry entry: surface it in the stats "
        << "view or document it as registry-only in this test";
  }
}

// --- Control files -----------------------------------------------------------

TEST(StatsCtl, ClearZeroesTheStatsView) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepMetrics& m = h.ninep().metrics();
  m.AddBytesIn(5);
  m.RecordOp(NinepOp::kWalk, 3, false);
  ASSERT_GT(m.bytes_in(), 0u);
  ASSERT_TRUE(h.vfs().WriteFile("/mnt/help/statsctl", "clear\n").ok());
  EXPECT_EQ(m.bytes_in(), 0u);
  EXPECT_EQ(m.count(NinepOp::kWalk), 0u);
  auto bad = h.vfs().WriteFile("/mnt/help/statsctl", "frobnicate\n");
  EXPECT_FALSE(bad.ok());
}

TEST(SlowCtl, ThresholdAndClear) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  FlightRecorder& fr = h.ninep().net().recorder();
  ASSERT_TRUE(h.vfs().WriteFile("/mnt/help/net/slowctl", "threshold 250\n").ok());
  EXPECT_EQ(fr.threshold_us(), 250u);
  fr.Record(Rec(300 * 1000));
  ASSERT_EQ(fr.kept(), 1u);
  ASSERT_TRUE(h.vfs().WriteFile("/mnt/help/net/slowctl", "clear\n").ok());
  EXPECT_EQ(fr.kept(), 0u);
  EXPECT_FALSE(h.vfs().WriteFile("/mnt/help/net/slowctl", "threshold x\n").ok());
  EXPECT_FALSE(h.vfs().WriteFile("/mnt/help/net/slowctl", "bogus\n").ok());
  auto ctl = h.vfs().ReadFile("/mnt/help/net/slowctl");
  ASSERT_TRUE(ctl.ok());
  EXPECT_NE(ctl.value().find("threshold_us 250\n"), std::string::npos);
}

// --- The /mnt/help/net tree over a live socket -------------------------------

TEST(NetFs, PerConnectionTreeOverTheWire) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  // The registry is process-global; zero it so "one connection's counters ==
  // the global totals" below compares only this test's traffic.
  srv.metrics().Reset();
  NinepListener lis(&srv);
  std::string path = SockPath("netfs");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto tr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(tr.ok()) << tr.message();
  NinepClient client(tr.value()->AsTransport());
  ASSERT_TRUE(client.Connect("sock").ok());

  ASSERT_EQ(srv.net().conn_count(), 1u);
  uint64_t cid = srv.net().List()[0]->cid();
  std::string dir = StrFormat("/mnt/help/net/%llu",
                              static_cast<unsigned long long>(cid));

  // The listing shows the static files plus this connection's directory.
  auto ls = client.ReadDir("/mnt/help/net");
  ASSERT_TRUE(ls.ok());
  std::set<std::string> names;
  for (const StatInfo& st : ls.value()) {
    names.insert(st.name);
  }
  EXPECT_EQ(names.count("clients"), 1u);
  EXPECT_EQ(names.count("slow"), 1u);
  EXPECT_EQ(names.count("slowctl"), 1u);
  EXPECT_EQ(names.count(std::to_string(cid)), 1u) << "conn dir missing";

  // A connection reading its own status sees itself live, with the
  // negotiated msize and its peer.
  auto status = client.ReadFile(dir + "/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status.value().find("peer unix\n"), std::string::npos) << status.value();
  EXPECT_NE(status.value().find("state active\n"), std::string::npos);
  EXPECT_NE(status.value().find(StrFormat("msize %u\n", kDefaultMsize)),
            std::string::npos);

  // The roll-up carries one line for this connection.
  auto clients = client.ReadFile("/mnt/help/net/clients");
  ASSERT_TRUE(clients.ok());
  EXPECT_NE(clients.value().find(
                "id peer state msize fids frames_in bytes_in bytes_out\n"),
            std::string::npos);
  EXPECT_NE(clients.value().find(StrFormat(
                "%llu unix active", static_cast<unsigned long long>(cid))),
            std::string::npos)
      << clients.value();

  // Per-connection op counts agree with what this client sent: every RPC the
  // client made so far is exactly this connection's traffic.
  auto stats = client.ReadFile(dir + "/stats");
  ASSERT_TRUE(stats.ok());
  std::shared_ptr<ConnInfo> info = srv.net().Find(cid);
  ASSERT_NE(info, nullptr);
  // The stats read itself finished dispatch before its reply was appended,
  // so the counts are settled by the time the client parses them.
  EXPECT_EQ(info->total_ops() + 0u, client.rpcs());
  EXPECT_NE(stats.value().find("op count errs p50us p99us\n"), std::string::npos);
  EXPECT_NE(stats.value().find("\nwalk "), std::string::npos) << stats.value();
  EXPECT_NE(stats.value().find("\nqueue_wait_us "), std::string::npos);

  // Per-connection counters sum consistently with the global net.* view:
  // one connection, so the totals must match exactly.
  EXPECT_EQ(info->bytes_in(), srv.metrics().net_bytes_in());
  EXPECT_EQ(info->bytes_out(), srv.metrics().net_bytes_out());
  for (size_t i = 0; i < kNinepOpCount; i++) {
    NinepOp op = static_cast<NinepOp>(i);
    EXPECT_EQ(info->op_count(op), srv.metrics().count(op))
        << "op " << NinepOpName(op);
  }

  // Keep a node from the synthesized subtree, then kill the connection: the
  // tree must answer "connection is gone", and the directory must vanish.
  NodePtr status_node;
  {
    auto g = srv.LockDispatch();
    auto n = h.vfs().Walk(dir + "/status");
    ASSERT_TRUE(n.ok());
    status_node = n.value();
  }
  lis.Stop();
  ASSERT_TRUE(WaitFor([&] { return srv.net().conn_count() == 0; }));
  OpenFile f(status_node, kOread, h.vfs().clock());
  Status gone = status_node->handler()->Open(f, kOread);
  EXPECT_FALSE(gone.ok());
  EXPECT_NE(gone.message().find("gone"), std::string::npos);
  auto after = h.vfs().ReadDir("/mnt/help/net");
  ASSERT_TRUE(after.ok());
  for (const StatInfo& st : after.value()) {
    EXPECT_NE(st.name, std::to_string(cid)) << "dead conn dir still listed";
  }
  ::unlink(path.c_str());
}

// --- The phase chain ---------------------------------------------------------

struct Phases {
  std::map<std::string, obs::TraceEvent> by_name;
  bool Has(const std::string& n) const { return by_name.count(n) == 1; }
  uint64_t Seq(const std::string& n) const { return by_name.at(n).seq; }
};

TEST(RequestTrace, OneRidChainsEveryPhaseInOrder) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  NinepListener lis(&srv);
  std::string path = SockPath("phases");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  obs::Tracer& tr = obs::Tracer::Global();
  tr.Clear();
  tr.Enable();

  auto sock = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(sock.ok());
  NinepClient client(sock.value()->AsTransport());
  ASSERT_TRUE(client.Connect("sock").ok());
  auto stats = client.ReadFile("/mnt/help/stats");
  ASSERT_TRUE(stats.ok());

  // req.outbox lands on the loop thread after the reply bytes are written;
  // wait for the full chain rather than racing it.
  ASSERT_TRUE(WaitFor([&] {
    for (const obs::TraceEvent& e : tr.Snapshot()) {
      if (std::string_view(e.name) == "req.outbox") {
        return true;
      }
    }
    return false;
  }));
  tr.Disable();

  ASSERT_EQ(srv.net().conn_count(), 1u);
  uint64_t cid = srv.net().List()[0]->cid();

  // Group phase events by rid. Every rid-stamped event belongs to this test's
  // single connection, and per-connection seqs ascend in frame order.
  std::map<uint64_t, Phases> by_rid;
  std::vector<uint64_t> frame_order;
  for (const obs::TraceEvent& e : tr.Snapshot()) {
    if (e.rid == 0) {
      continue;
    }
    EXPECT_EQ(e.rid >> 40, cid & 0xFFFFFF) << "rid from another connection";
    by_rid[e.rid].by_name[e.name] = e;
    if (std::string_view(e.name) == "req.frame") {
      frame_order.push_back(e.rid & 0xFFFFFF);
    }
  }
  ASSERT_GE(frame_order.size(), 2u);
  for (size_t i = 1; i < frame_order.size(); i++) {
    EXPECT_EQ(frame_order[i], frame_order[i - 1] + 1)
        << "per-connection seq must be dense and ascending";
  }

  // At least one request (the Tread of /mnt/help/stats goes through the
  // dispatch lock and a handler) must show the complete chain, in emit order:
  // frame → queue → lock → handler → encode → outbox.
  bool full_chain = false;
  for (const auto& [rid, ph] : by_rid) {
    if (!ph.Has("req.handler")) {
      continue;
    }
    ASSERT_TRUE(ph.Has("req.frame")) << "rid 0x" << std::hex << rid;
    ASSERT_TRUE(ph.Has("req.queue"));
    ASSERT_TRUE(ph.Has("req.lock"));
    ASSERT_TRUE(ph.Has("req.encode"));
    if (!ph.Has("req.outbox")) {
      continue;  // reply may still be in flight for the last requests
    }
    EXPECT_LT(ph.Seq("req.frame"), ph.Seq("req.queue"));
    EXPECT_LT(ph.Seq("req.queue"), ph.Seq("req.lock"));
    EXPECT_LT(ph.Seq("req.lock"), ph.Seq("req.handler"));
    EXPECT_LT(ph.Seq("req.handler"), ph.Seq("req.encode"));
    EXPECT_LT(ph.Seq("req.encode"), ph.Seq("req.outbox"));
    full_chain = true;
  }
  EXPECT_TRUE(full_chain) << "no request completed all six phases";

  // Chrome export: named threads, flow events, and rid args all present.
  std::string json = tr.RenderChromeJson();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("net.loop"), std::string::npos);
  EXPECT_NE(json.find("net.worker0"), std::string::npos);
  EXPECT_NE(json.find("\"rid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  lis.Stop();
  ::unlink(path.c_str());
}

// --- The flight recorder catches a slow request ------------------------------

class SleepyHandler : public FileHandler {
 public:
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset > 0) {
      return std::string();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    return std::string("slow\n");
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return Status::Error("read-only");
  }
};

TEST(FlightRecorderWire, CatchesAnArtificiallySlowHandler) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  ASSERT_TRUE(
      h.vfs().AttachHandler("/mnt/help/slowfile", std::make_shared<SleepyHandler>())
          .ok());

  NinepListener lis(&srv);
  std::string path = SockPath("slowreq");
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  auto sock = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(sock.ok());
  NinepClient client(sock.value()->AsTransport());
  ASSERT_TRUE(client.Connect("sock").ok());
  auto body = client.ReadFile("/mnt/help/slowfile");
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value(), "slow\n");

  FlightRecorder& fr = srv.net().recorder();
  ASSERT_TRUE(WaitFor([&] {
    for (const RequestRecord& r : fr.Snapshot()) {
      if (r.op == NinepOp::kRead && r.handler_ns >= 20 * 1000 * 1000) {
        return true;
      }
    }
    return false;
  }));

  // The breakdown must be sane: the sleep dominates, every phase fits inside
  // the total, and the record names this connection.
  uint64_t cid = srv.net().List()[0]->cid();
  bool found = false;
  for (const RequestRecord& r : fr.Snapshot()) {
    if (r.op != NinepOp::kRead || r.handler_ns < 20 * 1000 * 1000) {
      continue;
    }
    found = true;
    EXPECT_EQ(r.cid, cid);
    EXPECT_EQ(r.rid >> 40, cid & 0xFFFFFF);
    EXPECT_GE(r.total_ns, r.handler_ns);
    EXPECT_LE(r.queue_ns, r.total_ns);
    EXPECT_LE(r.lock_ns, r.total_ns);
    EXPECT_LE(r.encode_ns, r.total_ns);
    EXPECT_LE(r.outbox_ns, r.total_ns);
  }
  ASSERT_TRUE(found);

  // The slow read is the slowest request this server has seen, so it leads
  // /mnt/help/net/slow.
  auto slow = client.ReadFile("/mnt/help/net/slow");
  ASSERT_TRUE(slow.ok());
  std::vector<std::string> lines = Split(slow.value(), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "rid cid tag op total_us queue_us lock_us handler_us encode_us "
            "outbox_us");
  std::vector<std::string> cols = Tokenize(lines[1]);
  ASSERT_EQ(cols.size(), 10u);
  EXPECT_EQ(cols[3], "read");
  EXPECT_GE(ParseInt(cols[7]), 20000) << "handler_us: " << lines[1];

  lis.Stop();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace help
