// The paper's remaining inline examples, run exactly as printed.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/tools/tools.h"

namespace help {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : h_(s_.help) {}

  std::string Shell(std::string_view src, std::string cwd = "/") {
    Env env;
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    auto r = h_.shell().Run(src, &env, std::move(cwd), {}, io);
    EXPECT_TRUE(r.ok()) << r.message();
    last_err_ = err;
    return out;
  }

  PaperSession s_;
  Help& h_;
  std::string last_err_;
};

// "if one selects with the middle button the text
//      grep '^main' /sys/src/cmd/help/*.c
//  the traditional command will be executed."
TEST_F(PaperExampleTest, GrepMainOverSysSrcCmdHelp) {
  ASSERT_TRUE(h_.ExecuteText("grep -n '^main' /sys/src/cmd/help/*.c", nullptr).ok());
  std::string errs = h_.errors_window()->body().text->Utf8();
  EXPECT_NE(errs.find("/sys/src/cmd/help/help.c:26: main(int argc, char *argv[])"),
            std::string::npos)
      << errs;
}

// "to copy the text in the body of window number 7 to a file, one may execute
//      cp /mnt/help/7/body file"
TEST_F(PaperExampleTest, CpWindowBodyToFile) {
  Window* w = nullptr;
  auto opened = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  ASSERT_TRUE(opened.ok());
  w = opened.value();
  Shell(StrFormat("cp /mnt/help/%d/body /tmp/file", w->id()));
  EXPECT_EQ(h_.vfs().ReadFile("/tmp/file").value(), w->body().text->Utf8());
}

// "To search for a text pattern,
//      grep pattern /mnt/help/7/body"
TEST_F(PaperExampleTest, GrepWindowBody) {
  auto opened = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  ASSERT_TRUE(opened.ok());
  std::string out =
      Shell(StrFormat("grep textinsert /mnt/help/%d/body", opened.value()->id()));
  EXPECT_NE(out.find("textinsert(1, errtext, es, n, 1);"), std::string::npos);
}

// "An ASCII file /mnt/help/index may be examined to connect tag file names
//  to window numbers. Each line of this file is a window number, a tab, and
//  the first line of the tag."
TEST_F(PaperExampleTest, IndexFormat) {
  auto opened = h_.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  ASSERT_TRUE(opened.ok());
  std::string index = h_.vfs().ReadFile("/mnt/help/index").value();
  bool found = false;
  for (const std::string& line : Split(index, '\n')) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> parts = Split(line, '\t');
    ASSERT_EQ(parts.size(), 2u) << line;
    EXPECT_GT(ParseInt(parts[0]), 0) << line;
    if (parts[1].find("/usr/rob/src/help/errs.c") != std::string::npos) {
      found = true;
      EXPECT_EQ(ParseInt(parts[0]), opened.value()->id());
    }
  }
  EXPECT_TRUE(found);
}

// "To create a new window, a process just opens /mnt/help/new/ctl ... and
//  may then read from that file the name of the window created".
TEST_F(PaperExampleTest, NewCtlProtocol) {
  std::string id = Shell("cat /mnt/help/new/ctl");
  long n = ParseInt(TrimSpace(id));
  ASSERT_GT(n, 0);
  EXPECT_NE(h_.page().FindById(static_cast<int>(n)), nullptr);
}

// The db tool: "People unfamiliar with adb can easily use help's interface
// to it to examine broken processes." The whole flow through the script.
TEST_F(PaperExampleTest, DbToolHidesAdbSyntax) {
  Window* scratch = h_.CreateWindow("note Close!");
  scratch->body().text->SetAll("crash: pid 176153\n");
  scratch->Relayout();
  size_t off = scratch->body().text->Utf8().find("176153") + 1;
  scratch->body().sel = {off, off};
  h_.SetCurrent(&scratch->body());
  Window* db = h_.WindowForFile("/help/db/stf");
  ASSERT_TRUE(h_.ExecuteText("regs", db).ok());
  Window* out = nullptr;
  for (Window* w : h_.AllWindows()) {
    if (w->tag().text->Utf8().find("176153 regs") != std::string::npos) {
      out = w;
    }
  }
  ASSERT_NE(out, nullptr);
  EXPECT_NE(out->body().text->Utf8().find("pc\t0x18df4"), std::string::npos);
}

}  // namespace
}  // namespace help
