// "The interface seen by programs": /mnt/help as the paper documents it —
// index, new/ctl, per-window tag/body/bodyapp/ctl — plus the snarf and open
// extensions, exercised both directly and over the 9P protocol.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/server.h"

namespace help {
namespace {

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest() {
    h_.vfs().MkdirAll("/usr/rob");
    h_.vfs().WriteFile("/usr/rob/f.c", "one\ntwo\nthree\n");
  }
  Help h_;
};

TEST_F(FileServerTest, NewCtlCreatesWindowAndReportsNumber) {
  int before = h_.counters().windows_created;
  auto data = h_.vfs().ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(h_.counters().windows_created, before + 1);
  int id = static_cast<int>(ParseInt(TrimSpace(data.value())));
  EXPECT_GT(id, 0);
  EXPECT_NE(h_.page().FindById(id), nullptr);
  // The window's files exist.
  EXPECT_TRUE(h_.vfs().Walk(StrFormat("/mnt/help/%d/body", id)).ok());
  EXPECT_TRUE(h_.vfs().Walk(StrFormat("/mnt/help/%d/tag", id)).ok());
  EXPECT_TRUE(h_.vfs().Walk(StrFormat("/mnt/help/%d/ctl", id)).ok());
  EXPECT_TRUE(h_.vfs().Walk(StrFormat("/mnt/help/%d/bodyapp", id)).ok());
}

TEST_F(FileServerTest, IndexListsWindows) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  ASSERT_TRUE(w.ok());
  auto index = h_.vfs().ReadFile("/mnt/help/index");
  ASSERT_TRUE(index.ok());
  EXPECT_NE(index.value().find(StrFormat("%d\t/usr/rob/f.c", w.value()->id())),
            std::string::npos);
}

TEST_F(FileServerTest, BodyReadAndWrite) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string body_path = StrFormat("/mnt/help/%d/body", w.value()->id());
  EXPECT_EQ(h_.vfs().ReadFile(body_path).value(), "one\ntwo\nthree\n");
  // cp /mnt/help/N/body file — the paper's example — is just a read.
  ASSERT_TRUE(h_.vfs().WriteFile(body_path, "replaced\n").ok());
  EXPECT_EQ(w.value()->body().text->Utf8(), "replaced\n");
}

TEST_F(FileServerTest, BodyappAppends) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string app = StrFormat("/mnt/help/%d/bodyapp", w.value()->id());
  ASSERT_TRUE(h_.vfs().AppendFile(app, "appended1\n").ok());
  ASSERT_TRUE(h_.vfs().AppendFile(app, "appended2\n").ok());
  std::string body = w.value()->body().text->Utf8();
  EXPECT_NE(body.find("three\nappended1\nappended2\n"), std::string::npos);
}

TEST_F(FileServerTest, TagReadWrite) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string tag_path = StrFormat("/mnt/help/%d/tag", w.value()->id());
  EXPECT_NE(h_.vfs().ReadFile(tag_path).value().find("/usr/rob/f.c"),
            std::string::npos);
  ASSERT_TRUE(h_.vfs().WriteFile(tag_path, "/renamed Close!").ok());
  EXPECT_EQ(w.value()->TagFilename(), "/renamed");
}

TEST_F(FileServerTest, CtlTagMessage) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string ctl = StrFormat("/mnt/help/%d/ctl", w.value()->id());
  ASSERT_TRUE(h_.vfs().WriteFile(ctl, "tag /usr/rob/ stack Close!\n").ok());
  EXPECT_EQ(w.value()->tag().text->Utf8(), "/usr/rob/ stack Close!");
  EXPECT_EQ(w.value()->ContextDir(), "/usr/rob");
}

TEST_F(FileServerTest, CtlShowSelectsAddress) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string ctl = StrFormat("/mnt/help/%d/ctl", w.value()->id());
  ASSERT_TRUE(h_.vfs().WriteFile(ctl, "show 2\n").ok());
  Selection s = w.value()->body().sel;
  EXPECT_EQ(w.value()->body().text->Utf8Range(s.q0, s.q1), "two\n");
}

TEST_F(FileServerTest, CtlInsertDeleteSelectClean) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string ctl = StrFormat("/mnt/help/%d/ctl", w.value()->id());
  ASSERT_TRUE(h_.vfs().WriteFile(ctl, "insert 0 HEAD \n").ok());
  EXPECT_EQ(w.value()->body().text->Utf8().substr(0, 5), "HEAD ");
  ASSERT_TRUE(h_.vfs().WriteFile(ctl, "delete 0 5\n").ok());
  EXPECT_EQ(w.value()->body().text->Utf8(), "one\ntwo\nthree\n");
  ASSERT_TRUE(h_.vfs().WriteFile(ctl, "select 4 7\n").ok());
  EXPECT_EQ(w.value()->body().sel, (Selection{4, 7}));
  ASSERT_TRUE(h_.vfs().WriteFile(ctl, "clean\n").ok());
  EXPECT_FALSE(w.value()->body().text->dirty());
}

TEST_F(FileServerTest, CtlRejectsBadMessages) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  std::string ctl = StrFormat("/mnt/help/%d/ctl", w.value()->id());
  EXPECT_FALSE(h_.vfs().WriteFile(ctl, "frobnicate\n").ok());
  EXPECT_FALSE(h_.vfs().WriteFile(ctl, "select 1\n").ok());
  EXPECT_FALSE(h_.vfs().WriteFile(ctl, "delete 5 2\n").ok());
}

TEST_F(FileServerTest, CtlReadReturnsWindowNumber) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  auto got = h_.vfs().ReadFile(StrFormat("/mnt/help/%d/ctl", w.value()->id()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), StrFormat("%d\n", w.value()->id()));
}

TEST_F(FileServerTest, SnarfFile) {
  h_.set_snarf("from the cut buffer");
  EXPECT_EQ(h_.vfs().ReadFile("/mnt/help/snarf").value(), "from the cut buffer");
  ASSERT_TRUE(h_.vfs().WriteFile("/mnt/help/snarf", "stored").ok());
  EXPECT_EQ(h_.snarf(), "stored");
}

TEST_F(FileServerTest, OpenRequestFile) {
  ASSERT_TRUE(h_.vfs().WriteFile("/mnt/help/open", "/usr/rob f.c:2\n").ok());
  Window* w = h_.WindowForFile("/usr/rob/f.c");
  ASSERT_NE(w, nullptr);
  Selection s = w->body().sel;
  EXPECT_EQ(w->body().text->Utf8Range(s.q0, s.q1), "two\n");
  EXPECT_FALSE(h_.vfs().WriteFile("/mnt/help/open", "onlyoneword\n").ok());
}

TEST_F(FileServerTest, ClosedWindowFilesReportGone) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  int id = w.value()->id();
  // Keep a path, close the window, then the files are removed.
  h_.CloseWindow(w.value());
  EXPECT_FALSE(h_.vfs().ReadFile(StrFormat("/mnt/help/%d/body", id)).ok());
}

// The paper's workflow must hold over the wire too: a 9P client examines and
// edits windows through the protocol.
TEST_F(FileServerTest, WorksOverNinep) {
  auto w = h_.OpenFile("/usr/rob/f.c", "/", nullptr);
  NinepServer server(&h_.vfs());
  NinepClient client(server.Transport());
  ASSERT_TRUE(client.Connect().ok());
  std::string body_path = StrFormat("/mnt/help/%d/body", w.value()->id());
  auto body = client.ReadFile(body_path);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value(), "one\ntwo\nthree\n");
  ASSERT_TRUE(client.AppendFile(StrFormat("/mnt/help/%d/bodyapp", w.value()->id()),
                                "via 9P\n")
                  .ok());
  EXPECT_NE(w.value()->body().text->Utf8().find("via 9P"), std::string::npos);
  // grep pattern /mnt/help/N/body — the paper's example — via a remote read.
  auto index = client.ReadFile("/mnt/help/index");
  ASSERT_TRUE(index.ok());
  EXPECT_NE(index.value().find("/usr/rob/f.c"), std::string::npos);
}

}  // namespace
}  // namespace help
