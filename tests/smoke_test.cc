// End-to-end smoke: boot the paper world, poke at the screen, run a tool.
#include <gtest/gtest.h>

#include "src/tools/tools.h"

namespace help {
namespace {

TEST(Smoke, BootScreenShowsTools) {
  PaperSession s;
  std::string screen = s.help.Render();
  EXPECT_NE(screen.find("/help/edit/stf"), std::string::npos) << screen;
  EXPECT_NE(screen.find("/help/cbr/stf"), std::string::npos);
  EXPECT_NE(screen.find("/help/db/stf"), std::string::npos);
  EXPECT_NE(screen.find("/help/mail/stf"), std::string::npos);
  EXPECT_NE(screen.find("help/Boot"), std::string::npos);
  EXPECT_NE(screen.find("headers"), std::string::npos);
  EXPECT_NE(screen.find("stack"), std::string::npos);
}

TEST(Smoke, OpenDirectoryAndFile) {
  PaperSession s;
  Help& h = s.help;
  ASSERT_TRUE(h.ExecuteText("Open /usr/rob/src/help", nullptr).ok());
  std::string screen = h.Render();
  EXPECT_NE(screen.find("/usr/rob/src/help/ Close! Get!"), std::string::npos) << screen;
  EXPECT_NE(screen.find("errs.c"), std::string::npos);

  // Point at errs.c in the listing and Open it: the directory context from
  // the window tag resolves the relative name.
  Point p = h.FindOnScreen("errs.c");
  ASSERT_NE(p.x, -1);
  h.MouseClick(p);
  ASSERT_TRUE(h.ExecuteText("Open", h.page().HitTest(p).window).ok());
  screen = h.Render();
  EXPECT_NE(screen.find("/usr/rob/src/help/errs.c"), std::string::npos) << screen;
  // The window shows the file from the top; the call on line 34 is below the
  // fold but the body text holds it.
  Window* w = h.WindowForFile("/usr/rob/src/help/errs.c");
  ASSERT_NE(w, nullptr);
  EXPECT_NE(w->body().text->Utf8().find("textinsert(1, errtext, es, n, 1);"),
            std::string::npos);
}

TEST(Smoke, MailHeadersViaMiddleClick) {
  PaperSession s;
  Help& h = s.help;
  Point p = h.FindOnScreen("headers");
  ASSERT_NE(p.x, -1);
  h.MouseExecWord(p);
  std::string screen = h.Render();
  EXPECT_NE(screen.find("/mail/box/rob/mbox"), std::string::npos) << screen;
  EXPECT_NE(screen.find("2 sean"), std::string::npos) << screen;
}

TEST(Smoke, DebuggerStackFromMail) {
  PaperSession s;
  Help& h = s.help;
  // headers, then read Sean's message.
  h.MouseExecWord(h.FindOnScreen("headers"));
  Point sean = h.FindOnScreen("2 sean");
  ASSERT_NE(sean.x, -1);
  h.MouseClick(sean);
  h.MouseExecWord(h.FindOnScreen("messages"));
  std::string screen = h.Render();
  EXPECT_NE(screen.find("user TLB miss"), std::string::npos) << screen;

  // Point at the pid and run the stack script.
  Point pid = h.FindOnScreen("176153");
  ASSERT_NE(pid.x, -1);
  h.MouseClick(pid);
  h.MouseExecWord(h.FindOnScreen("stack"));
  screen = h.Render();
  EXPECT_NE(screen.find("strchr.s:34"), std::string::npos) << screen;
  EXPECT_NE(screen.find("textinsert(sel=0x1"), std::string::npos) << screen;
  // Zero keystrokes so far.
  EXPECT_EQ(h.counters().keystrokes, 0);
}

}  // namespace
}  // namespace help
