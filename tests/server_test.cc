// The multi-client 9P service: concurrent sessions against one Help
// instance, serialized dispatch, Tflush cancellation, duplicate-tag
// rejection, and the /mnt/help/stats observability file.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/server.h"
#include "src/shell/shell.h"

namespace help {
namespace {

// --- Concurrent sessions against one Help instance ---------------------------

// The acceptance path: N concurrent clients, each with its own Session, drive
// the full encode → dispatch → decode byte path against a single Help —
// interleaved walks, reads, ctl writes, and a Tflush — then the shell cats
// /mnt/help/stats and sees nonzero per-op counters.
TEST(NinepServerConcurrent, FourSessionsInterleavedAgainstOneHelp) {
  Help h;
  NinepServer& srv = h.ninep();
  constexpr int kClients = 4;
  constexpr int kRounds = 25;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; c++) {
    threads.emplace_back([&, c] {
      NinepServer::SessionId sid = srv.OpenSession();
      NinepClient client(srv.TransportFor(sid));
      if (!client.Connect(StrFormat("client%d", c)).ok()) {
        failures++;
        return;
      }
      for (int round = 0; round < kRounds; round++) {
        // Create a window over the wire and label it through its ctl file.
        auto ctl = client.ReadFile("/mnt/help/new/ctl");
        if (!ctl.ok()) {
          failures++;
          continue;
        }
        std::string id(TrimSpace(ctl.value()));
        std::string base = "/mnt/help/" + id;
        if (!client.WriteFile(base + "/ctl", StrFormat("tag w%d.%d", c, round)).ok()) {
          failures++;
        }
        if (!client.AppendFile(base + "/bodyapp", StrFormat("row %d\n", round)).ok()) {
          failures++;
        }
        // Interleaved walks and reads of shared files.
        auto index = client.ReadFile("/mnt/help/index");
        if (!index.ok() || index.value().find('\t') == std::string::npos) {
          failures++;
        }
        auto fid = client.WalkFid(base + "/body");
        if (!fid.ok()) {
          failures++;
          continue;
        }
        if (!client.OpenFid(fid.value(), kOread).ok()) {
          failures++;
        } else {
          auto body = client.ReadFid(fid.value(), 0, 4096);
          if (!body.ok() || body.value().find("row") == std::string::npos) {
            failures++;
          }
        }
        if (!client.Clunk(fid.value()).ok()) {
          failures++;
        }
        // A Tflush for a long-gone tag: a legal no-op answered with Rflush.
        if (!client.Flush(1).ok()) {
          failures++;
        }
      }
      // Per-session fid isolation: this session still holds exactly its own
      // root fid; other clients' walks never landed in our table.
      if (srv.open_fids(sid) != 1) {
        failures++;
      }
      srv.CloseSession(sid);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(static_cast<int>(h.AllWindows().size()), kClients * kRounds);

  // The paper's own reporting channel: cat /mnt/help/stats from the shell.
  Env env;
  std::string out;
  std::string err;
  Io io;
  io.out = &out;
  io.err = &err;
  ASSERT_TRUE(h.shell().Run("cat /mnt/help/stats", &env, "/", {}, io).ok()) << err;
  const NinepMetrics& m = srv.metrics();
  EXPECT_GT(m.count(NinepOp::kWalk), 0u);
  EXPECT_GT(m.count(NinepOp::kOpen), 0u);
  EXPECT_GT(m.count(NinepOp::kRead), 0u);
  EXPECT_GT(m.count(NinepOp::kWrite), 0u);
  EXPECT_GT(m.count(NinepOp::kClunk), 0u);
  EXPECT_GT(m.count(NinepOp::kFlush), 0u);
  for (const char* op : {"walk ", "open ", "read ", "write ", "clunk ", "flush "}) {
    size_t at = out.find(op);
    ASSERT_NE(at, std::string::npos) << "stats missing " << op << "\n" << out;
    // The count column after the op name is nonzero.
    EXPECT_NE(out[at + std::string(op).size()], '0') << out;
  }
  EXPECT_NE(out.find("bytes_in "), std::string::npos);
  EXPECT_NE(out.find("bytes_out "), std::string::npos);
}

// Two sessions may use the same fid numbers for different files.
TEST(NinepServerConcurrent, FidTablesAreIndependentPerSession) {
  Vfs vfs;
  vfs.WriteFile("/a", "alpha");
  vfs.WriteFile("/b", "beta");
  NinepServer srv(&vfs);
  auto s1 = srv.OpenSession();
  auto s2 = srv.OpenSession();
  NinepClient c1(srv.TransportFor(s1));
  NinepClient c2(srv.TransportFor(s2));
  ASSERT_TRUE(c1.Connect("one").ok());
  ASSERT_TRUE(c2.Connect("two").ok());
  // Both clients allocate fid 1, pointing at different files.
  auto f1 = c1.WalkFid("/a");
  auto f2 = c2.WalkFid("/b");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1.value(), f2.value());  // same number...
  ASSERT_TRUE(c1.OpenFid(f1.value(), kOread).ok());
  ASSERT_TRUE(c2.OpenFid(f2.value(), kOread).ok());
  EXPECT_EQ(c1.ReadFid(f1.value(), 0, 64).value(), "alpha");  // ...different files
  EXPECT_EQ(c2.ReadFid(f2.value(), 0, 64).value(), "beta");
  // Clunking in one session does not disturb the other.
  ASSERT_TRUE(c1.Clunk(f1.value()).ok());
  EXPECT_EQ(c2.ReadFid(f2.value(), 0, 64).value(), "beta");
  EXPECT_EQ(srv.open_fids(s1), 1u);  // root only
  EXPECT_EQ(srv.open_fids(s2), 2u);  // root + fid 1
}

// A handler whose Read blocks until released — lets tests hold the dispatch
// lock at a precise point to exercise queued-request behaviour.
class GateHandler : public FileHandler {
 public:
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    std::unique_lock<std::mutex> lk(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lk, [this] { return released_; });
    return std::string("gate");
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    return ErrPerm("gate");
  }

  void WaitEntered() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

Fcall TreadOf(uint32_t fid, uint16_t tag) {
  Fcall t;
  t.type = MsgType::kTread;
  t.tag = tag;
  t.fid = fid;
  t.offset = 0;
  t.count = 128;
  return t;
}

struct GateRig {
  Vfs vfs;
  std::shared_ptr<GateHandler> gate = std::make_shared<GateHandler>();
  NinepServer srv{&vfs};
  NinepServer::SessionId sid = 0;
  uint32_t gate_fid = 0;
  uint32_t file_fid = 0;

  GateRig() {
    vfs.WriteFile("/f", "plain");
    vfs.AttachHandler("/gate", gate);
    sid = srv.OpenSession();
    NinepClient client(srv.TransportFor(sid));
    EXPECT_TRUE(client.Connect().ok());
    auto g = client.WalkFid("/gate");
    auto f = client.WalkFid("/f");
    EXPECT_TRUE(g.ok());
    EXPECT_TRUE(f.ok());
    gate_fid = g.value();
    file_fid = f.value();
    EXPECT_TRUE(client.OpenFid(gate_fid, kOread).ok());
    EXPECT_TRUE(client.OpenFid(file_fid, kOread).ok());
  }

  Fcall Send(const Fcall& t) {
    auto r = DecodeFcall(srv.HandleBytes(sid, EncodeFcall(t)));
    EXPECT_TRUE(r.ok());
    return r.ok() ? r.value() : Fcall{};
  }
};

// Tflush cancels a request that is still waiting for the dispatch lock: the
// flushed request is answered "interrupted" instead of running. Since PR 9 a
// read-only request would dispatch concurrently with the parked gate read
// instead of queueing, so the queued request is a mutation — a fence that
// genuinely waits for the shared holders to drain.
TEST(NinepServerConcurrent, FlushCancelsQueuedRequest) {
  GateRig rig;
  // The metrics registry is process-global now, so the counter may carry
  // traffic from earlier tests: assert the delta, not the absolute value.
  uint64_t cancels_before = rig.srv.metrics().flush_cancels();
  // A writable fid for the request that must queue.
  Fcall tw;
  tw.type = MsgType::kTwalk;
  tw.tag = 3;
  tw.fid = 0;
  tw.newfid = 10;
  tw.wname = {"f"};
  ASSERT_EQ(rig.Send(tw).type, MsgType::kRwalk);
  Fcall to;
  to.type = MsgType::kTopen;
  to.tag = 3;
  to.fid = 10;
  to.mode = kOwrite;
  ASSERT_EQ(rig.Send(to).type, MsgType::kRopen);

  // Thread A enters the gate read and parks inside dispatch.
  std::thread blocker([&] {
    Fcall r = rig.Send(TreadOf(rig.gate_fid, 50));
    EXPECT_EQ(r.type, MsgType::kRread);
    EXPECT_EQ(r.data, "gate");
  });
  rig.gate->WaitEntered();

  // Thread B queues a write of /f with tag 60 behind the held dispatch lock.
  Fcall queued_reply;
  std::thread queued([&] {
    Fcall w;
    w.type = MsgType::kTwrite;
    w.tag = 60;
    w.fid = 10;
    w.offset = 0;
    w.data = "never lands";
    queued_reply = rig.Send(w);
  });
  while (!rig.srv.TagInFlight(rig.sid, 60)) {
    std::this_thread::yield();
  }

  // Tflush(60) is answered immediately — it does not take the dispatch lock.
  Fcall flush;
  flush.type = MsgType::kTflush;
  flush.tag = 61;
  flush.oldtag = 60;
  EXPECT_EQ(rig.Send(flush).type, MsgType::kRflush);

  rig.gate->Release();
  blocker.join();
  queued.join();
  EXPECT_EQ(queued_reply.type, MsgType::kRerror);
  EXPECT_EQ(queued_reply.ename, "interrupted");
  EXPECT_EQ(rig.srv.metrics().flush_cancels(), cancels_before + 1);
  // Flushing a tag that is no longer in flight is a clean no-op.
  flush.tag = 62;
  EXPECT_EQ(rig.Send(flush).type, MsgType::kRflush);
  EXPECT_EQ(rig.srv.metrics().flush_cancels(), cancels_before + 1);
}

// PR 4 reader–writer dispatch: while one session's shared-mode read is
// parked inside the gate handler (holding the dispatch lock shared), a
// second session's read-only traffic — version, attach, walk, open, read —
// completes in parallel instead of queueing behind it.
TEST(NinepServerConcurrent, SharedReadsRunInParallelAcrossSessions) {
  GateRig rig;
  uint64_t shared_before = rig.srv.metrics().shared_reads();
  std::thread blocker([&] {
    Fcall r = rig.Send(TreadOf(rig.gate_fid, 50));
    EXPECT_EQ(r.type, MsgType::kRread);
    EXPECT_EQ(r.data, "gate");
  });
  rig.gate->WaitEntered();

  // The gate read is mid-dispatch and holds the lock in shared mode; a whole
  // read-only conversation on another session must finish before release.
  auto sid2 = rig.srv.OpenSession();
  NinepClient c2(rig.srv.TransportFor(sid2));
  ASSERT_TRUE(c2.Connect("parallel").ok());
  auto r = c2.ReadFile("/f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "plain");

  rig.gate->Release();
  blocker.join();
  EXPECT_GT(rig.srv.metrics().shared_reads(), shared_before);
  rig.srv.CloseSession(sid2);
}

// The perf_ninep --serialized baseline hook: with force_exclusive on, the
// same read-only traffic never takes the shared path.
TEST(NinepServerConcurrent, ForceExclusiveDisablesSharedReads) {
  Vfs vfs;
  vfs.WriteFile("/f", "x");
  NinepServer srv(&vfs);
  srv.set_force_exclusive(true);
  uint64_t shared_before = srv.metrics().shared_reads();
  NinepClient c(srv.TransportFor(srv.OpenSession()));
  ASSERT_TRUE(c.Connect().ok());
  ASSERT_TRUE(c.ReadFile("/f").ok());
  EXPECT_EQ(srv.metrics().shared_reads(), shared_before);
  srv.set_force_exclusive(false);
  ASSERT_TRUE(c.ReadFile("/f").ok());
  EXPECT_GT(srv.metrics().shared_reads(), shared_before);
}

// Tflush racing an in-flight shared-mode Tread: whichever way the race
// lands, the reply is exactly one of {Rread with the file's bytes, Rerror
// "interrupted"} — never a torn payload, never a dropped reply — and the
// Tflush itself is always answered Rflush. (The deterministic gate-based
// cancel is FlushCancelsQueuedRequest above; this covers the ungated race.)
TEST(NinepServerConcurrent, FlushRacingSharedReadYieldsExactlyOneOutcome) {
  GateRig rig;
  for (int i = 0; i < 50; i++) {
    uint16_t read_tag = static_cast<uint16_t>(100 + 2 * i);
    uint16_t flush_tag = static_cast<uint16_t>(101 + 2 * i);
    Fcall reply;
    std::thread reader([&] { reply = rig.Send(TreadOf(rig.file_fid, read_tag)); });
    Fcall flush;
    flush.type = MsgType::kTflush;
    flush.tag = flush_tag;
    flush.oldtag = read_tag;
    EXPECT_EQ(rig.Send(flush).type, MsgType::kRflush);
    reader.join();
    if (reply.type == MsgType::kRread) {
      EXPECT_EQ(reply.data, "plain");
    } else {
      ASSERT_EQ(reply.type, MsgType::kRerror);
      EXPECT_EQ(reply.ename, "interrupted");
    }
  }
}

// The protocol forbids two in-flight requests with the same tag on one
// session; the second is rejected without waiting for the first.
TEST(NinepServerConcurrent, DuplicateInflightTagRejected) {
  GateRig rig;
  std::thread blocker([&] {
    Fcall r = rig.Send(TreadOf(rig.gate_fid, 50));
    EXPECT_EQ(r.type, MsgType::kRread);
  });
  rig.gate->WaitEntered();

  Fcall dup = rig.Send(TreadOf(rig.file_fid, 50));
  EXPECT_EQ(dup.type, MsgType::kRerror);
  EXPECT_EQ(dup.ename, "duplicate tag");

  rig.gate->Release();
  blocker.join();
  // After completion the tag is free again.
  Fcall again = rig.Send(TreadOf(rig.file_fid, 50));
  EXPECT_EQ(again.type, MsgType::kRread);
}

// /mnt/help/index is snapshotted at open, under the dispatch lock: a reader
// paging through it in small chunks sees one consistent listing even while
// other sessions create windows.
TEST(NinepServerConcurrent, IndexSnapshotStableUnderConcurrentCreation) {
  Help h;
  NinepServer& srv = h.ninep();

  auto reader_sid = srv.OpenSession();
  NinepClient reader(srv.TransportFor(reader_sid));
  ASSERT_TRUE(reader.Connect("reader").ok());
  // Seed a couple of windows so the first snapshot is nonempty.
  NinepClient seeder(srv.TransportFor(srv.OpenSession()));
  ASSERT_TRUE(seeder.Connect("seeder").ok());
  ASSERT_TRUE(seeder.ReadFile("/mnt/help/new/ctl").ok());
  ASSERT_TRUE(seeder.ReadFile("/mnt/help/new/ctl").ok());

  std::atomic<bool> stop{false};
  std::thread creator([&] {
    NinepClient c(srv.TransportFor(srv.OpenSession()));
    ASSERT_TRUE(c.Connect("creator").ok());
    while (!stop.load()) {
      ASSERT_TRUE(c.ReadFile("/mnt/help/new/ctl").ok());
    }
  });

  for (int round = 0; round < 20; round++) {
    auto fid = reader.WalkFid("/mnt/help/index");
    ASSERT_TRUE(fid.ok());
    ASSERT_TRUE(reader.OpenFid(fid.value(), kOread).ok());
    // Page through in tiny chunks; the open-time snapshot must hold still.
    std::string listing;
    uint64_t off = 0;
    while (true) {
      auto chunk = reader.ReadFid(fid.value(), off, 8);
      ASSERT_TRUE(chunk.ok());
      if (chunk.value().empty()) {
        break;
      }
      off += chunk.value().size();
      listing += chunk.take();
    }
    ASSERT_TRUE(reader.Clunk(fid.value()).ok());
    ASSERT_FALSE(listing.empty());
    EXPECT_EQ(listing.back(), '\n') << listing;
    for (const std::string& line : Split(listing.substr(0, listing.size() - 1), '\n')) {
      // Every line is a complete "N\t<tagline>" record — never torn.
      ASSERT_FALSE(line.empty()) << listing;
      EXPECT_TRUE(line[0] >= '0' && line[0] <= '9') << line;
      EXPECT_NE(line.find('\t'), std::string::npos) << line;
    }
  }
  stop = true;
  creator.join();
}

// Closing a session mid-traffic never crashes later requests on that id.
TEST(NinepServerConcurrent, RequestsAfterCloseSessionFailCleanly) {
  Vfs vfs;
  vfs.WriteFile("/f", "x");
  NinepServer srv(&vfs);
  auto sid = srv.OpenSession();
  NinepClient c(srv.TransportFor(sid));
  ASSERT_TRUE(c.Connect().ok());
  srv.CloseSession(sid);
  auto r = c.ReadFile("/f");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("unknown session"), std::string::npos);
  EXPECT_EQ(srv.session_count(), 0u);
}

// --- The observability files over the 9P wire --------------------------------

// /mnt/help/tracectl controls capture, /mnt/help/trace serves the event ring,
// /mnt/help/metrics serves the whole registry — all over the same protocol
// the windows use, so a shell script can profile the server that serves it.
TEST(Observability, TraceAndMetricsReadableOverTheWire) {
  Help h;
  NinepServer& srv = h.ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  ASSERT_TRUE(client.Connect("obs").ok());

  ASSERT_TRUE(client.WriteFile("/mnt/help/tracectl", "clear\non\n").ok());
  // Traffic to trace: window creation, a ctl write, an index read.
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  ASSERT_TRUE(client.WriteFile(base + "/ctl", "tag traced").ok());
  ASSERT_TRUE(client.ReadFile("/mnt/help/index").ok());
  ASSERT_TRUE(client.WriteFile("/mnt/help/tracectl", "off").ok());

  // The trace: one event per line, "seq ns tick tid kind name arg", ordered
  // by the leading sequence number (strictly increasing).
  auto trace = client.ReadFile("/mnt/help/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.value().find("ninep.dispatch"), std::string::npos) << trace.value();
  long long prev = -1;
  int lines = 0;
  for (const std::string& line : Split(trace.value(), '\n')) {
    if (TrimSpace(line).empty()) {
      continue;
    }
    long long seq = std::stoll(line.substr(0, line.find(' ')));
    EXPECT_GT(seq, prev) << trace.value();
    prev = seq;
    lines++;
  }
  EXPECT_GT(lines, 0);

  // The registry: 9P op counters and the trace's own bookkeeping, as text.
  auto metrics = client.ReadFile("/mnt/help/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("ninep.read.count "), std::string::npos);
  EXPECT_NE(metrics.value().find("ninep.walk.count "), std::string::npos);
  EXPECT_NE(metrics.value().find("trace.events "), std::string::npos);
  EXPECT_NE(metrics.value().find("ninep.dispatch.ns "), std::string::npos);

  // tracectl reads: status by default, Chrome trace-event JSON after `json`.
  auto status = client.ReadFile("/mnt/help/tracectl");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status.value().find("tracing off"), std::string::npos);
  ASSERT_TRUE(client.WriteFile("/mnt/help/tracectl", "json").ok());
  auto json = client.ReadFile("/mnt/help/tracectl");
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json.value().rfind("{\"displayTimeUnit\"", 0), 0u) << json.value();
  EXPECT_NE(json.value().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.value().find("\"ph\":\"B\""), std::string::npos);
  ASSERT_TRUE(client.WriteFile("/mnt/help/tracectl", "text").ok());

  // Unknown commands are rejected with a clean 9P error.
  EXPECT_FALSE(client.WriteFile("/mnt/help/tracectl", "bogus").ok());
  srv.CloseSession(sid);
}

// /mnt/help/stats (PR 1's format) must render byte-identically from the
// registry-backed metrics: same header, same per-op lines, same totals.
TEST(Observability, StatsStillServedOverTheWire) {
  Help h;
  NinepServer& srv = h.ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  ASSERT_TRUE(client.Connect("stats").ok());
  ASSERT_TRUE(client.ReadFile("/mnt/help/index").ok());
  auto stats = client.ReadFile("/mnt/help/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rfind("op count errs p50us p99us\n", 0), 0u) << stats.value();
  EXPECT_NE(stats.value().find("\nbytes_in "), std::string::npos);
  EXPECT_NE(stats.value().find("\nflush_cancels "), std::string::npos);
  // PR 4: the read-path concurrency counters ride the same file.
  EXPECT_NE(stats.value().find("\nshared_reads "), std::string::npos);
  EXPECT_NE(stats.value().find("\nread_retries "), std::string::npos);
  // PR 7: the socket connection layer's counters, appended after the older
  // blocks so byte-offset consumers of those keep working.
  EXPECT_NE(stats.value().find("\nnet_accepts "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_active_conns "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_reaped "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_backpressure_stalls "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_frame_errors "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_bytes_in "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_bytes_out "), std::string::npos);
  // PR 9: pipelined dispatch + zero-copy read counters, appended last.
  EXPECT_NE(stats.value().find("\nooo_completions "), std::string::npos);
  EXPECT_NE(stats.value().find("\nbytes_zero_copy "), std::string::npos);
  EXPECT_NE(stats.value().find("\nbytes_staged "), std::string::npos);
  EXPECT_NE(stats.value().find("\nbodyapp_coalesced "), std::string::npos);
  EXPECT_NE(stats.value().find("\nnet_writev_calls "), std::string::npos);
  srv.CloseSession(sid);
}

// The tentpole's zero-copy half, in-process: body reads transcode straight
// from the gap buffer's rune spans into the Rread frame, and every payload
// byte shows up in ninep.bytes_zero_copy. Flipping the escape hatch routes
// the same reads through the staged path instead.
TEST(ZeroCopyRead, BodyReadsAreGatheredAndAccounted) {
  Help h;
  NinepServer& srv = h.ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  ASSERT_TRUE(client.Connect("zc").ok());

  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  std::string mirror;
  for (int i = 0; i < 40; i++) {
    mirror += StrFormat("ζεῖ %02d — zero copy naïveté\n", i);
  }
  ASSERT_TRUE(client.WriteFile(base + "/bodyapp", mirror).ok());

  auto fid = client.WalkFid(base + "/body");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(client.OpenFid(fid.value(), kOread).ok());

  uint64_t zc0 = srv.metrics().bytes_zero_copy();
  uint64_t st0 = srv.metrics().bytes_staged();
  uint64_t payload = 0;
  for (uint64_t off = 0; off < mirror.size(); off += 613) {
    uint32_t count = 613;
    auto got = client.ReadFid(fid.value(), off, count);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), mirror.substr(off, count));
    payload += got.value().size();
  }
  // Every body payload byte above went through the gather path; none were
  // staged through an intermediate string.
  EXPECT_EQ(srv.metrics().bytes_zero_copy() - zc0, payload);
  EXPECT_EQ(srv.metrics().bytes_staged() - st0, 0u);

  srv.set_disable_zero_copy(true);
  uint64_t zc1 = srv.metrics().bytes_zero_copy();
  auto staged = client.ReadFid(fid.value(), 0, 613);
  ASSERT_TRUE(staged.ok());
  EXPECT_EQ(staged.value(), mirror.substr(0, 613));
  EXPECT_EQ(srv.metrics().bytes_zero_copy(), zc1);
  EXPECT_GE(srv.metrics().bytes_staged() - st0, staged.value().size());
  srv.set_disable_zero_copy(false);
  srv.CloseSession(sid);
}

// Without a pipelined transport the multi-tag read helper degrades to the
// one-at-a-time RPC loop — same bytes, no pipe required.
TEST(ZeroCopyRead, ReadFidPipelinedFallsBackWithoutPipeIo) {
  Help h;
  NinepServer& srv = h.ninep();
  NinepServer::SessionId sid = srv.OpenSession();
  NinepClient client(srv.TransportFor(sid));
  ASSERT_TRUE(client.Connect("fb").ok());

  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));
  std::string body = "fallback body: plain bytes, no pipe\n";
  ASSERT_TRUE(client.WriteFile(base + "/bodyapp", body).ok());
  auto fid = client.WalkFid(base + "/body");
  ASSERT_TRUE(fid.ok());
  ASSERT_TRUE(client.OpenFid(fid.value(), kOread).ok());

  auto got = client.ReadFidPipelined(fid.value(), {{0, 8}, {8, 8}, {16, 64}});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 3u);
  EXPECT_EQ(got.value()[0], body.substr(0, 8));
  EXPECT_EQ(got.value()[1], body.substr(8, 8));
  EXPECT_EQ(got.value()[2], body.substr(16, 64));
  srv.CloseSession(sid);
}

}  // namespace
}  // namespace help
