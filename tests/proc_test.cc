// Process-substrate tests: the table and the adb formatters, checked against
// the exact Figure 7 trace.
#include <gtest/gtest.h>

#include "src/proc/env.h"
#include "src/proc/proc.h"

namespace help {
namespace {

TEST(Env, ListsAndStrings) {
  Env e;
  e.Set("tools", {"edit", "cbr", "db"});
  EXPECT_EQ(e.Get("tools").size(), 3u);
  EXPECT_EQ(e.GetString("tools"), "edit cbr db");
  EXPECT_EQ(e.GetString("missing"), "");
  EXPECT_FALSE(e.Has("missing"));
  e.SetString("helpsel", "3 10 14");
  EXPECT_EQ(e.Get("helpsel"), (std::vector<std::string>{"3 10 14"}));
  e.Unset("helpsel");
  EXPECT_FALSE(e.Has("helpsel"));
}

TEST(Env, CloneIsIndependent) {
  Env e;
  e.SetString("x", "parent");
  Env child = e.Clone();
  child.SetString("x", "child");
  EXPECT_EQ(e.GetString("x"), "parent");
}

TEST(ProcTable, AddFindBroken) {
  ProcTable t;
  ProcImage running;
  running.pid = 10;
  running.program = "/bin/rc";
  t.Add(running, nullptr);
  t.Add(MakePaperCrashImage(), nullptr);
  EXPECT_NE(t.Find(10), nullptr);
  EXPECT_EQ(t.Find(999), nullptr);
  ASSERT_EQ(t.Broken().size(), 1u);
  EXPECT_EQ(t.Broken()[0]->pid, 176153);
  EXPECT_EQ(t.All().size(), 2u);
}

TEST(ProcTable, PublishesProcFiles) {
  Vfs vfs;
  ProcTable t;
  t.Add(MakePaperCrashImage(), &vfs);
  auto status = vfs.ReadFile("/proc/176153/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status.value().find("Broken"), std::string::npos);
  EXPECT_NE(vfs.ReadFile("/proc/176153/note").value().find("TLB miss"),
            std::string::npos);
}

TEST(Adb, StackMatchesFigure7) {
  ProcImage p = MakePaperCrashImage();
  std::string stack = AdbStack(p);
  // The trace, line by line, as the paper's Figure 7 shows it.
  const char* expected[] = {
      "last exception: TLB miss (load or fetch)",
      "/sys/src/libc/mips/strchr.s:34 strchr+0x68?\tMOVW 0(R3),R5",
      "strchr(c=0x3c, s=0x0) called from strlen+0x1c /sys/src/libc/port/strlen.c:7",
      "strlen(s=0x0) called from textinsert+0x30 text.c:32",
      "textinsert(sel=0x1, t=0x40e60, s=0x0, q0=0xd, full=0x1) called from errs+0xe8 "
      "errs.c:34",
      "\tn = 0x3d7cc",
      "errs(s=0x0) called from Xdie2+0x14 exec.c:252",
      "\tp = 0x40d88",
      "Xdie2() called from lookup+0xc4 exec.c:101",
      "lookup(s=0x40be8) called from execute+0x50 exec.c:207",
      "\ti = 0x1f",
      "\tn = 0xc5bf",
      "execute(t=0x3ebbc, p0=0x2, p1=0x2) called from control+0x430 ctrl.c:331",
      "control() called from control ctrl.c:320",
  };
  size_t pos = 0;
  for (const char* line : expected) {
    size_t found = stack.find(line, pos);
    EXPECT_NE(found, std::string::npos) << "missing or out of order: " << line;
    if (found != std::string::npos) {
      pos = found;
    }
  }
}

TEST(Adb, StackEveryCoordinateIsOpenable) {
  // Every file:line token in the trace must parse as a file address — that
  // is what makes the trace "filled with text that points to new text".
  ProcImage p = MakePaperCrashImage();
  for (const StackFrame& f : p.stack) {
    EXPECT_FALSE(f.file.empty());
    EXPECT_GT(f.line, 0);
  }
}

TEST(Adb, Regs) {
  std::string regs = AdbRegs(MakePaperCrashImage());
  EXPECT_NE(regs.find("pc\t0x18df4"), std::string::npos);
  EXPECT_NE(regs.find("sp\t0x3f4e8"), std::string::npos);
  EXPECT_NE(regs.find("status\t0xfb0c"), std::string::npos);
  EXPECT_NE(regs.find("badvaddr\t0x0"), std::string::npos);
}

TEST(Adb, Pc) {
  EXPECT_EQ(AdbPc(MakePaperCrashImage()),
            "0x18df4 strchr+0x68 /sys/src/libc/mips/strchr.s:34\n");
}

TEST(Adb, PsAndBroke) {
  ProcTable t;
  t.Add(MakePaperCrashImage(), nullptr);
  EXPECT_NE(AdbPs(t).find("176153"), std::string::npos);
  EXPECT_EQ(AdbBroke(t), "176153 help\n");
}

TEST(Adb, Kstack) {
  std::string k = AdbKstack(MakePaperCrashImage());
  EXPECT_NE(k.find("syssleep+0x24"), std::string::npos);
}

TEST(Adb, EmptyStack) {
  ProcImage p;
  p.pid = 1;
  p.note = "user note";
  p.regs.pc = 0x1000;
  EXPECT_EQ(AdbStack(p), "last exception: note\n");
  EXPECT_EQ(AdbPc(p), "0x1000\n");
}

}  // namespace
}  // namespace help
