// Path algebra, VFS, and synthetic-file handler tests.
#include <gtest/gtest.h>

#include "src/fs/path.h"
#include "src/fs/vfs.h"

namespace help {
namespace {

// --- Paths ---------------------------------------------------------------------

struct CleanCase {
  const char* in;
  const char* out;
};

class PathClean : public ::testing::TestWithParam<CleanCase> {};

TEST_P(PathClean, Cleans) { EXPECT_EQ(CleanPath(GetParam().in), GetParam().out); }

INSTANTIATE_TEST_SUITE_P(
    Cases, PathClean,
    ::testing::Values(CleanCase{"/", "/"}, CleanCase{"//a//b/", "/a/b"},
                      CleanCase{"/a/./b", "/a/b"}, CleanCase{"/a/../b", "/b"},
                      CleanCase{"/..", "/"}, CleanCase{"a/b/../c", "a/c"},
                      CleanCase{"../x", "../x"}, CleanCase{".", "."},
                      CleanCase{"", "."}, CleanCase{"/a/b/..", "/a"}));

TEST(Path, JoinContextRule) {
  // Absolute names win outright; relative names get the directory prepended.
  EXPECT_EQ(JoinPath("/usr/rob/src/help", "dat.h"), "/usr/rob/src/help/dat.h");
  EXPECT_EQ(JoinPath("/usr/rob/src/help", "/lib/profile"), "/lib/profile");
  EXPECT_EQ(JoinPath("/a", "../b"), "/b");
  EXPECT_EQ(JoinPath("", "x"), "x");
}

TEST(Path, BaseDir) {
  EXPECT_EQ(BasePath("/a/b/c.c"), "c.c");
  EXPECT_EQ(DirPath("/a/b/c.c"), "/a/b");
  EXPECT_EQ(DirPath("/top"), "/");
  EXPECT_EQ(BasePath("/"), "/");
  EXPECT_EQ(DirPath("rel"), ".");
}

TEST(Path, Elements) {
  EXPECT_EQ(PathElements("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(PathElements("/"), (std::vector<std::string>{}));
}

// --- VFS -----------------------------------------------------------------------

TEST(Vfs, CreateWriteRead) {
  Vfs vfs;
  ASSERT_TRUE(vfs.MkdirAll("/usr/rob").ok());
  ASSERT_TRUE(vfs.WriteFile("/usr/rob/x", "hello").ok());
  auto data = vfs.ReadFile("/usr/rob/x");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello");
}

TEST(Vfs, WalkErrors) {
  Vfs vfs;
  vfs.WriteFile("/f", "x");
  EXPECT_FALSE(vfs.Walk("/nope").ok());
  EXPECT_FALSE(vfs.Walk("/f/child").ok());  // walk through a file
  EXPECT_FALSE(vfs.ReadFile("/").ok());     // reading a directory
}

TEST(Vfs, CreateRejectsDuplicatesAndMissingParents) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Create("/a", true).ok());
  EXPECT_FALSE(vfs.Create("/a", true).ok());
  EXPECT_FALSE(vfs.Create("/missing/x", false).ok());
}

TEST(Vfs, RemoveSemantics) {
  Vfs vfs;
  vfs.MkdirAll("/d/sub");
  vfs.WriteFile("/d/sub/f", "x");
  EXPECT_FALSE(vfs.Remove("/d/sub").ok());  // not empty
  EXPECT_TRUE(vfs.Remove("/d/sub/f").ok());
  EXPECT_TRUE(vfs.Remove("/d/sub").ok());
  EXPECT_FALSE(vfs.Remove("/d/sub").ok());  // already gone
}

TEST(Vfs, ReadDirSortedWithTypes) {
  Vfs vfs;
  vfs.MkdirAll("/d/zdir");
  vfs.WriteFile("/d/beta", "");
  vfs.WriteFile("/d/alpha", "");
  auto entries = vfs.ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 3u);
  EXPECT_EQ(entries.value()[0].name, "alpha");
  EXPECT_EQ(entries.value()[1].name, "beta");
  EXPECT_EQ(entries.value()[2].name, "zdir");
  EXPECT_TRUE(entries.value()[2].dir);
}

TEST(Vfs, MtimeAdvancesOnWrite) {
  Vfs vfs;
  vfs.WriteFile("/a", "1");
  uint64_t t1 = vfs.Stat("/a").value().mtime;
  vfs.WriteFile("/b", "2");
  vfs.WriteFile("/a", "3");
  uint64_t t2 = vfs.Stat("/a").value().mtime;
  EXPECT_GT(t2, t1);
  EXPECT_GT(t2, vfs.Stat("/b").value().mtime);
}

TEST(Vfs, AppendAndSparseWrites) {
  Vfs vfs;
  vfs.WriteFile("/f", "abc");
  vfs.AppendFile("/f", "def");
  EXPECT_EQ(vfs.ReadFile("/f").value(), "abcdef");
  auto f = vfs.Open("/f", kOwrite);
  ASSERT_TRUE(f.ok());
  f.value()->Write(10, "X");
  std::string data = vfs.ReadFile("/f").value();
  EXPECT_EQ(data.size(), 11u);
  EXPECT_EQ(data[10], 'X');
  EXPECT_EQ(data[8], '\0');  // zero-filled hole
}

TEST(Vfs, OpenModesEnforced) {
  Vfs vfs;
  vfs.WriteFile("/f", "data");
  auto r = vfs.Open("/f", kOread);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value()->Write(0, "x").ok());
  auto w = vfs.Open("/f", kOwrite);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w.value()->Read(0, 10).ok());
}

TEST(Vfs, OpenForReadDoesNotCreate) {
  Vfs vfs;
  EXPECT_FALSE(vfs.Open("/ghost", kOread).ok());
  EXPECT_TRUE(vfs.Open("/ghost", kOwrite).ok());  // write-open creates
  EXPECT_TRUE(vfs.Walk("/ghost").ok());
}

TEST(Vfs, TruncateOnOpen) {
  Vfs vfs;
  vfs.WriteFile("/f", "long content");
  auto f = vfs.Open("/f", kOwrite | kOtrunc);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(vfs.ReadFile("/f").value(), "");
}

TEST(Vfs, FullPathWalksParents) {
  Vfs vfs;
  vfs.MkdirAll("/a/b");
  vfs.WriteFile("/a/b/c", "");
  auto node = vfs.Walk("/a/b/c");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(Vfs::FullPath(*node.value()), "/a/b/c");
  EXPECT_EQ(Vfs::FullPath(*vfs.root()), "/");
}

// --- Synthetic files -------------------------------------------------------------

// A counter file: reads return how many times it has been opened.
class CountingHandler : public FileHandler {
 public:
  Status Open(OpenFile& f, uint8_t mode) override {
    opens_++;
    f.state = std::to_string(opens_) + "\n";
    return Status::Ok();
  }
  Result<std::string> Read(OpenFile& f, uint64_t offset, uint32_t count) override {
    if (offset >= f.state.size()) {
      return std::string();
    }
    return f.state.substr(offset, count);
  }
  Result<uint32_t> Write(OpenFile& f, uint64_t offset, std::string_view data) override {
    last_write = std::string(data);
    return static_cast<uint32_t>(data.size());
  }
  std::string last_write;

 private:
  int opens_ = 0;
};

TEST(Vfs, SyntheticHandlerPerOpenState) {
  Vfs vfs;
  auto handler = std::make_shared<CountingHandler>();
  ASSERT_TRUE(vfs.AttachHandler("/dev/counter", handler).ok());
  EXPECT_EQ(vfs.ReadFile("/dev/counter").value(), "1\n");
  EXPECT_EQ(vfs.ReadFile("/dev/counter").value(), "2\n");
  ASSERT_TRUE(vfs.WriteFile("/dev/counter", "ctl message").ok());
  EXPECT_EQ(handler->last_write, "ctl message");
}

TEST(Vfs, HandlerCreatesIntermediateDirs) {
  Vfs vfs;
  ASSERT_TRUE(vfs.AttachHandler("/mnt/deep/nest/file", std::make_shared<CountingHandler>())
                  .ok());
  EXPECT_TRUE(vfs.Walk("/mnt/deep/nest").value()->dir());
}

}  // namespace
}  // namespace help
