// rc control flow: if / if not / for / while / switch / fn / the ~ builtin —
// enough of the language to run Rob's profile.
#include <gtest/gtest.h>

#include "src/shell/coreutils.h"
#include "src/shell/shell.h"

namespace help {
namespace {

class ShellControlTest : public ::testing::Test {
 protected:
  ShellControlTest() : shell_(&vfs_, &registry_, &procs_) {
    RegisterCoreutils(&vfs_, &registry_);
  }

  std::string Run(std::string_view src, int* status = nullptr,
                  std::vector<std::string> args = {}) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    auto r = shell_.Run(src, &env_, "/", args, io);
    EXPECT_TRUE(r.ok()) << r.message() << " running: " << src;
    if (status != nullptr) {
      *status = r.ok() ? r.value() : -1;
    }
    last_err_ = err;
    return out;
  }

  Vfs vfs_;
  CommandRegistry registry_;
  ProcTable procs_;
  Env env_;
  Shell shell_;
  std::string last_err_;
};

TEST_F(ShellControlTest, MatchBuiltin) {
  int status;
  Run("~ exec.c *.c", &status);
  EXPECT_EQ(status, 0);
  Run("~ exec.h *.c", &status);
  EXPECT_EQ(status, 1);
  Run("~ exec.h *.c *.h", &status);
  EXPECT_EQ(status, 0);
  Run("~ anything", &status);
  EXPECT_EQ(status, 1);
}

TEST_F(ShellControlTest, IfRunsBodyOnSuccess) {
  EXPECT_EQ(Run("if(true) echo yes"), "yes\n");
  EXPECT_EQ(Run("if(false) echo yes"), "");
  EXPECT_EQ(Run("if(~ a.c *.c) echo match"), "match\n");
}

TEST_F(ShellControlTest, IfNotPairsWithPrecedingIf) {
  EXPECT_EQ(Run("if(false) echo yes\nif not echo no"), "no\n");
  EXPECT_EQ(Run("if(true) echo yes\nif not echo no"), "yes\n");
}

TEST_F(ShellControlTest, IfConditionOutputIsDiscarded) {
  // rc shows the condition's output; we route it to the same io — but the
  // status decides. Here grep matches (status 0) and prints.
  vfs_.WriteFile("/f", "needle\n");
  EXPECT_EQ(Run("if(grep -c needle /f) echo found"), "1\nfound\n");
}

TEST_F(ShellControlTest, ForIteratesExplicitList) {
  EXPECT_EQ(Run("for(i in a b c) echo item $i"), "item a\nitem b\nitem c\n");
}

TEST_F(ShellControlTest, ForIteratesGlob) {
  vfs_.MkdirAll("/src");
  vfs_.WriteFile("/src/x.c", "");
  vfs_.WriteFile("/src/y.c", "");
  EXPECT_EQ(Run("for(f in /src/*.c) basename $f"), "x.c\ny.c\n");
}

TEST_F(ShellControlTest, ForWithoutListUsesArgs) {
  EXPECT_EQ(Run("for(a) echo got $a", nullptr, {"p", "q"}), "got p\ngot q\n");
}

TEST_F(ShellControlTest, WhileLoops) {
  // Grow x until the negated match says it is long enough.
  EXPECT_EQ(Run("x=a\nwhile(! ~ $x aaaa) x=$x^a\necho $x"), "aaaa\n");
  EXPECT_EQ(Run("while(false) echo never\necho after"), "after\n");
}

TEST_F(ShellControlTest, SwitchSelectsMatchingCase) {
  const char* script =
      "switch($1){\n"
      "case *.c\n"
      "\techo c source\n"
      "case *.h mkfile\n"
      "\techo header or mkfile\n"
      "case *\n"
      "\techo other\n"
      "}\n";
  EXPECT_EQ(Run(script, nullptr, {"exec.c"}), "c source\n");
  EXPECT_EQ(Run(script, nullptr, {"dat.h"}), "header or mkfile\n");
  EXPECT_EQ(Run(script, nullptr, {"mkfile"}), "header or mkfile\n");
  EXPECT_EQ(Run(script, nullptr, {"README"}), "other\n");
}

TEST_F(ShellControlTest, SwitchWithNoMatchDoesNothing) {
  EXPECT_EQ(Run("switch(zzz){\ncase a\necho a\n}\necho after"), "after\n");
}

TEST_F(ShellControlTest, FunctionsDefineAndRun) {
  EXPECT_EQ(Run("fn greet { echo hello $1 }\ngreet rob\ngreet sean"),
            "hello rob\nhello sean\n");
}

TEST_F(ShellControlTest, FunctionArgsRestoreCallerArgs) {
  EXPECT_EQ(Run("fn inner { echo in $1 }\ninner wrapped\necho out $1", nullptr,
                {"original"}),
            "in wrapped\nout original\n");
}

TEST_F(ShellControlTest, FunctionsSeeAndSetCallerVars) {
  EXPECT_EQ(Run("fn bump { x=$x^! }\nx=start\nbump\necho $x"), "start!\n");
}

TEST_F(ShellControlTest, NegationBuiltin) {
  int status;
  Run("! true", &status);
  EXPECT_EQ(status, 1);
  Run("! false", &status);
  EXPECT_EQ(status, 0);
  Run("! ~ a b", &status);
  EXPECT_EQ(status, 0);
}

TEST_F(ShellControlTest, ListAssignment) {
  // rc's pairwise distribution: "[" ^ ('% ' '') ^ "]" -> ('[% ]' '[]').
  EXPECT_EQ(Run("prompt=('% ' '')\necho $#prompt\necho [$prompt]"),
            "2\n[% ] []\n");
  EXPECT_EQ(Run("l=(a b c)\necho $l"), "a b c\n");
}

TEST_F(ShellControlTest, StatusVariable) {
  EXPECT_EQ(Run("false\necho status $status\ntrue\necho status $status"),
            "status 1\nstatus 0\n");
}

TEST_F(ShellControlTest, NestedControl) {
  const char* script =
      "for(f in a.c b.h c.c)\n"
      "\tif(~ $f *.c) echo compile $f\n";
  EXPECT_EQ(Run(script), "compile a.c\ncompile c.c\n");
}

TEST_F(ShellControlTest, ProfileRunsVerbatim) {
  // The paper's profile (Figures 2-3), with bind as the Plan 9 no-op shim.
  const char* profile =
      "bind -c $home/tmp /tmp\n"
      "bind -a $home/bin/rc /bin\n"
      "bind -a $home/bin/$cputype /bin\n"
      "fn x { if(! ~ $#* 0) $* }\n"
      "switch($service){\n"
      "case terminal\n"
      "\tprompt=('% ' '')\n"
      "\tsite=plan9\n"
      "case cpu\n"
      "\tnews\n"
      "}\n"
      "fortune\n";
  env_.SetString("service", "cpu");
  env_.SetString("home", "/usr/rob");
  vfs_.WriteFile("/lib/news", "no news\n");
  std::string out = Run(profile);
  EXPECT_NE(out.find("no news"), std::string::npos) << out << last_err_;
  EXPECT_FALSE(out.empty());
}

TEST_F(ShellControlTest, ControlKeywordsOnlyInCommandPosition) {
  // `if` as an argument is just a word.
  EXPECT_EQ(Run("echo if for while"), "if for while\n");
  // And a word that merely starts with a keyword is not a keyword.
  vfs_.WriteFile("/bin/iffy", "echo iffy ran\n");
  EXPECT_EQ(Run("iffy"), "iffy ran\n");
}

TEST_F(ShellControlTest, ParseErrors) {
  for (const char* bad :
       {"if true) echo x", "if(true echo x", "for x in a) echo x",
        "switch(x){ echo no case\n}", "fn { echo anon }", "while(true"}) {
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    auto r = shell_.Run(bad, &env_, "/", {}, io);
    EXPECT_FALSE(r.ok()) << "expected parse error: " << bad;
  }
}

}  // namespace
}  // namespace help
