#include "src/regexp/regexp.h"

#include <gtest/gtest.h>

#include "src/regexp/cache.h"

namespace help {
namespace {

// Compiles or dies; search helper returning the matched text (or "<none>").
std::string FirstMatch(std::string_view pattern, std::string_view text) {
  auto re = Regexp::Compile(pattern);
  EXPECT_TRUE(re.ok()) << re.message();
  if (!re.ok()) {
    return "<bad>";
  }
  RuneString runes = RunesFromUtf8(text);
  auto m = re.value().Search(runes);
  if (!m) {
    return "<none>";
  }
  return Utf8FromRunes(RuneStringView(runes).substr(m->begin, m->end - m->begin));
}

struct MatchCase {
  const char* pattern;
  const char* text;
  const char* expect;  // matched substring or "<none>"
};

class RegexpMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(RegexpMatch, Matches) {
  EXPECT_EQ(FirstMatch(GetParam().pattern, GetParam().text), GetParam().expect)
      << GetParam().pattern << " on " << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Basics, RegexpMatch,
    ::testing::Values(
        MatchCase{"abc", "xxabcxx", "abc"}, MatchCase{"abc", "ab", "<none>"},
        MatchCase{"a.c", "abc", "abc"}, MatchCase{"a.c", "a\nc", "<none>"},  // . is not \n
        MatchCase{"ab*c", "ac", "ac"}, MatchCase{"ab*c", "abbbc", "abbbc"},
        MatchCase{"ab+c", "ac", "<none>"}, MatchCase{"ab+c", "abbc", "abbc"},
        MatchCase{"ab?c", "abc", "abc"}, MatchCase{"ab?c", "ac", "ac"},
        MatchCase{"a|b", "zb", "b"}, MatchCase{"hello|world", "say world", "world"},
        MatchCase{"(ab)+", "ababab", "ababab"},
        MatchCase{"x(a|b)*y", "xabbay", "xabbay"}));

INSTANTIATE_TEST_SUITE_P(
    Classes, RegexpMatch,
    ::testing::Values(MatchCase{"[abc]+", "zzcabz", "cab"},
                      MatchCase{"[a-z]+", "ABCdefGH", "def"},
                      MatchCase{"[^a-z]+", "abcDEF", "DEF"},
                      MatchCase{"[0-9][0-9]*", "line 176153 end", "176153"},
                      MatchCase{"[]]", "x]y", "]"},      // ] first is literal
                      MatchCase{"[a-]", "-", "-"},       // trailing - is literal
                      MatchCase{"[\\t]", "a\tb", "\t"}));

INSTANTIATE_TEST_SUITE_P(
    Anchors, RegexpMatch,
    ::testing::Values(MatchCase{"^abc", "abcdef", "abc"},
                      MatchCase{"^def", "abcdef", "<none>"},
                      MatchCase{"def$", "abcdef", "def"},
                      MatchCase{"^abc$", "abc", "abc"},
                      // ^/$ match at embedded line boundaries (multi-line text).
                      MatchCase{"^world", "hello\nworld", "world"},
                      MatchCase{"hello$", "hello\nworld", "hello"}));

INSTANTIATE_TEST_SUITE_P(
    Escapes, RegexpMatch,
    ::testing::Values(MatchCase{"a\\.c", "abc a.c", "a.c"},
                      MatchCase{"\\*", "2*3", "*"},
                      MatchCase{"a\\nb", "a\nb", "a\nb"},
                      MatchCase{"\\(x\\)", "f(x)", "(x)"}));

TEST(Regexp, LeftmostMatchWins) {
  auto re = Regexp::Compile("a+");
  ASSERT_TRUE(re.ok());
  RuneString text = RunesFromUtf8("xxaayaaa");
  auto m = re.value().Search(text);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 2u);
  EXPECT_EQ(m->end, 4u);  // greedy within the leftmost start
}

TEST(Regexp, SearchFromOffset) {
  auto re = Regexp::Compile("ab");
  ASSERT_TRUE(re.ok());
  RuneString text = RunesFromUtf8("ab ab ab");
  auto m = re.value().Search(text, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 3u);
}

TEST(Regexp, MatchAtIsAnchored) {
  auto re = Regexp::Compile("bc");
  ASSERT_TRUE(re.ok());
  RuneString text = RunesFromUtf8("abc");
  EXPECT_FALSE(re.value().MatchAt(text, 0).has_value());
  EXPECT_TRUE(re.value().MatchAt(text, 1).has_value());
}

TEST(Regexp, CaptureGroups) {
  auto re = Regexp::Compile("(a+)(b+)");
  ASSERT_TRUE(re.ok());
  RuneString text = RunesFromUtf8("zaabbbz");
  auto m = re.value().Search(text);
  ASSERT_TRUE(m.has_value());
  ASSERT_GE(m->groups.size(), 2u);
  EXPECT_EQ(m->groups[0], (std::pair<size_t, size_t>(1, 3)));
  EXPECT_EQ(m->groups[1], (std::pair<size_t, size_t>(3, 6)));
}

TEST(Regexp, UnsetGroup) {
  auto re = Regexp::Compile("(a)|(b)");
  ASSERT_TRUE(re.ok());
  RuneString text = RunesFromUtf8("b");
  auto m = re.value().Search(text);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->groups[0].first, static_cast<size_t>(-1));
  EXPECT_EQ(m->groups[1].first, 0u);
}

TEST(Regexp, EmptyAlternative) {
  auto re = Regexp::Compile("x(a|)y");
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(FirstMatch("x(a|)y", "xy"), "xy");
  EXPECT_EQ(FirstMatch("x(a|)y", "xay"), "xay");
}

TEST(Regexp, UnicodeRunes) {
  EXPECT_EQ(FirstMatch("caf.", "un caf\xC3\xA9 noir"), "caf\xC3\xA9");
}

struct ErrorCase {
  const char* pattern;
};

class RegexpErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(RegexpErrors, Rejected) {
  auto re = Regexp::Compile(GetParam().pattern);
  EXPECT_FALSE(re.ok()) << GetParam().pattern;
}

INSTANTIATE_TEST_SUITE_P(Syntax, RegexpErrors,
                         ::testing::Values(ErrorCase{"("}, ErrorCase{")"}, ErrorCase{"a)"},
                                           ErrorCase{"(a"}, ErrorCase{"*a"}, ErrorCase{"+"},
                                           ErrorCase{"[abc"}, ErrorCase{"a\\"},
                                           ErrorCase{"[z-a]"}));

// Pathological pattern that kills backtrackers; the Pike VM must stay linear.
TEST(Regexp, NoExponentialBlowup) {
  std::string pattern;
  for (int i = 0; i < 20; i++) {
    pattern += "a?";
  }
  for (int i = 0; i < 20; i++) {
    pattern += "a";
  }
  auto re = Regexp::Compile(pattern);
  ASSERT_TRUE(re.ok());
  RuneString text(20, 'a');
  auto m = re.value().Search(text);  // must return promptly
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->end - m->begin, 20u);
}

// Property: a literal pattern must match exactly where std::string finds it.
class RegexpLiteralProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegexpLiteralProperty, AgreesWithFind) {
  uint32_t seed = static_cast<uint32_t>(GetParam());
  auto next = [&seed] {
    seed = seed * 1664525 + 1013904223;
    return seed >> 16;
  };
  std::string alphabet = "abcx";
  std::string text;
  for (int i = 0; i < 200; i++) {
    text += alphabet[next() % alphabet.size()];
  }
  std::string needle;
  for (int i = 0; i < 3; i++) {
    needle += alphabet[next() % alphabet.size()];
  }
  auto re = Regexp::Compile(needle);
  ASSERT_TRUE(re.ok());
  RuneString runes = RunesFromUtf8(text);
  auto m = re.value().Search(runes);
  size_t expect = text.find(needle);
  if (expect == std::string::npos) {
    EXPECT_FALSE(m.has_value());
  } else {
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->begin, expect);
    EXPECT_EQ(m->end, expect + needle.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexpLiteralProperty, ::testing::Range(1, 33));

// --- Streaming (two-span) search ------------------------------------------

// Splits `text` at every possible point and checks that searching the spans
// gives the same answer as searching the contiguous string.
TEST(RegexpSpans, EverySplitEquivalent) {
  const char* kPatterns[] = {"abc", "a.c", "^b", "c$", "(a+)(b+)", "x|abc"};
  RuneString runes = RunesFromUtf8("xxabc\nabbc\nbzz abc");
  for (const char* pattern : kPatterns) {
    auto re = Regexp::Compile(pattern);
    ASSERT_TRUE(re.ok()) << pattern;
    auto want = re.value().Search(RuneStringView(runes));
    for (size_t cut = 0; cut <= runes.size(); cut++) {
      RuneSpans spans(RuneStringView(runes).substr(0, cut),
                      RuneStringView(runes).substr(cut));
      auto got = re.value().Search(spans);
      ASSERT_EQ(got.has_value(), want.has_value()) << pattern << " cut " << cut;
      if (want) {
        EXPECT_EQ(got->begin, want->begin) << pattern << " cut " << cut;
        EXPECT_EQ(got->end, want->end) << pattern << " cut " << cut;
        EXPECT_EQ(got->groups, want->groups) << pattern << " cut " << cut;
      }
    }
  }
}

TEST(RegexpSpans, LiteralExtraction) {
  auto whole = Regexp::Compile("hello");
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value().required_prefix(), RunesFromUtf8("hello"));
  EXPECT_TRUE(whole.value().literal_only());
  EXPECT_FALSE(whole.value().line_anchored());

  auto prefix = Regexp::Compile("err(or|no)");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value().required_prefix(), RunesFromUtf8("err"));
  EXPECT_FALSE(prefix.value().literal_only());

  auto anchored = Regexp::Compile("^main");
  ASSERT_TRUE(anchored.ok());
  EXPECT_TRUE(anchored.value().line_anchored());
  EXPECT_EQ(anchored.value().required_prefix(), RunesFromUtf8("main"));

  auto starred = Regexp::Compile("a*b");
  ASSERT_TRUE(starred.ok());
  EXPECT_TRUE(starred.value().required_prefix().empty());

  auto grouped = Regexp::Compile("(abc)");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped.value().required_prefix(), RunesFromUtf8("abc"));
  EXPECT_FALSE(grouped.value().literal_only());  // must record the capture
}

// The fast path and the plain VM must agree, including on matches that the
// skip loop lands on mid-candidate.
TEST(RegexpSpans, FastPathEquivalence) {
  RuneString runes = RunesFromUtf8("ababx abaabab ababab!");
  auto re = Regexp::Compile("abab");
  ASSERT_TRUE(re.ok());
  for (size_t start = 0; start <= runes.size(); start++) {
    Regexp::SetLiteralFastPathEnabled(false);
    auto want = re.value().Search(RuneStringView(runes), start);
    Regexp::SetLiteralFastPathEnabled(true);
    auto got = re.value().Search(RuneStringView(runes), start);
    ASSERT_EQ(got.has_value(), want.has_value()) << start;
    if (want) {
      EXPECT_EQ(got->begin, want->begin) << start;
      EXPECT_EQ(got->end, want->end) << start;
    }
  }
}

TEST(RegexpSpans, SearchBackward) {
  RuneString runes = RunesFromUtf8("ab ab ab");
  auto re = Regexp::Compile("ab");
  ASSERT_TRUE(re.ok());
  RuneSpans spans{RuneStringView(runes)};

  auto m = re.value().SearchBackward(spans, runes.size());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 6u);  // the last "ab"

  m = re.value().SearchBackward(spans, 5);  // the second "ab" ends exactly here
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 3u);

  m = re.value().SearchBackward(spans, 4);  // only the first "ab" fits
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 0u);

  m = re.value().SearchBackward(spans, 1);  // no match fits
  EXPECT_FALSE(m.has_value());

  // Greedy-at-each-start: -/a+/ on "aaa" is the match at the last start.
  RuneString aaa = RunesFromUtf8("aaa");
  auto plus = Regexp::Compile("a+");
  ASSERT_TRUE(plus.ok());
  m = plus.value().SearchBackward(RuneSpans{RuneStringView(aaa)}, aaa.size());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->begin, 2u);
  EXPECT_EQ(m->end, 3u);
}

// --- Compiled-pattern cache -----------------------------------------------

TEST(RegexpCache, HitReturnsSameObject) {
  RegexpCache cache;
  auto a = cache.Get("a(b|c)+");
  ASSERT_TRUE(a.ok());
  auto b = cache.Get("a(b|c)+");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegexpCache, ErrorsAreNotCached) {
  RegexpCache cache;
  EXPECT_FALSE(cache.Get("a(b").ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RegexpCache, EvictsLeastRecentlyUsed) {
  RegexpCache cache;
  auto first = cache.Get("pat0");
  ASSERT_TRUE(first.ok());
  const Regexp* first_ptr = first.value().get();
  // Fill past capacity without touching pat0 again: it must be evicted.
  for (int i = 1; i < 100; i++) {
    ASSERT_TRUE(cache.Get("pat" + std::to_string(i)).ok());
  }
  EXPECT_LE(cache.size(), 64u);
  auto again = cache.Get("pat0");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().get(), first_ptr);  // recompiled, not the old entry
}

}  // namespace
}  // namespace help
