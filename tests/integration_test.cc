// Cross-module integration: whole-system flows that cut across the shell,
// file server, window system, browser and tools at once.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/fs/server.h"
#include "src/tools/demo.h"

namespace help {
namespace {

// A complete external application session over 9P: a "remote process"
// builds a browser-style window without ever touching the Help API.
TEST(Integration, RemoteProcessBuildsAWindowOver9P) {
  PaperSession s;
  Help& h = s.help;
  NinepServer server(&h.vfs());
  NinepClient client(server.Transport());
  ASSERT_TRUE(client.Connect("remote").ok());

  // Create a window, read back its number.
  auto ctl = client.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string id(TrimSpace(ctl.value()));
  std::string base = "/mnt/help/" + id;

  // Title it, fill it, select a range — all through files.
  ASSERT_TRUE(client.WriteFile(base + "/ctl", "tag /usr/rob/src/help/ report Close!").ok());
  ASSERT_TRUE(client.AppendFile(base + "/bodyapp", "exec.c:213\nexec.c:252\n").ok());
  ASSERT_TRUE(client.WriteFile(base + "/ctl", "select 0 10").ok());

  Window* w = h.page().FindById(static_cast<int>(ParseInt(id)));
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->ContextDir(), "/usr/rob/src/help");
  EXPECT_EQ(w->body().sel, (Selection{0, 10}));

  // The user can now Open from the remote-built window: the context rules
  // treat it exactly like a local one.
  h.SetCurrent(&w->body());
  w->body().sel = {0, 0};  // point into "exec.c:213"
  ASSERT_TRUE(h.ExecuteText("Open", w).ok());
  Window* execc = h.WindowForFile("/usr/rob/src/help/exec.c");
  ASSERT_NE(execc, nullptr);
  Selection sel = execc->body().sel;
  EXPECT_EQ(execc->body().text->Utf8Range(sel.q0, sel.q1), "\tn = 0;\n");
}

// The paper's pipeline examples: cp and grep against window bodies.
TEST(Integration, ShellCommandsAgainstWindowBodies) {
  PaperSession s;
  Help& h = s.help;
  auto w = h.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  int id = w.value()->id();
  Env env;
  std::string out;
  std::string err;
  Io io;
  io.out = &out;
  io.err = &err;
  // "cp /mnt/help/7/body file"
  auto r = h.shell().Run(StrFormat("cp /mnt/help/%d/body /tmp/snapshot", id), &env,
                         "/", {}, io);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(h.vfs().ReadFile("/tmp/snapshot").value(), w.value()->body().text->Utf8());
  // "grep pattern /mnt/help/7/body"
  out.clear();
  r = h.shell().Run(StrFormat("grep -n textinsert /mnt/help/%d/body", id), &env, "/",
                    {}, io);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(out.find("34: "), std::string::npos) << out;
}

// The index file reflects window lifecycle, as scripts depend on.
TEST(Integration, IndexTracksLifecycle) {
  PaperSession s;
  Help& h = s.help;
  auto before = h.vfs().ReadFile("/mnt/help/index").value();
  auto w = h.OpenFile("/usr/rob/src/help/dat.h", "/", nullptr);
  auto during = h.vfs().ReadFile("/mnt/help/index").value();
  EXPECT_EQ(before.find("dat.h"), std::string::npos);
  EXPECT_NE(during.find("dat.h"), std::string::npos);
  h.CloseWindow(w.value());
  auto after = h.vfs().ReadFile("/mnt/help/index").value();
  EXPECT_EQ(after.find("dat.h"), std::string::npos);
}

// A user-authored tool script using control flow: classify the pointed-at
// file by suffix and open a window with the verdict.
TEST(Integration, ControlFlowToolScript) {
  PaperSession s;
  Help& h = s.help;
  h.vfs().MkdirAll("/help/kind");
  h.vfs().WriteFile("/help/kind/stf", "kind\n");
  h.vfs().WriteFile(
      "/help/kind/kind",
      "eval `{help/parse -c}\n"
      "x=`{cat /mnt/help/new/ctl}\n"
      "echo tag $file^': kind Close!' > /mnt/help/$x/ctl\n"
      "switch($file){\n"
      "case *.c\n"
      "\techo C source > /mnt/help/$x/bodyapp\n"
      "case *.h\n"
      "\techo C header > /mnt/help/$x/bodyapp\n"
      "case *\n"
      "\techo something else > /mnt/help/$x/bodyapp\n"
      "}\n");
  auto w = h.OpenFile("/usr/rob/src/help/dat.h", "/", nullptr);
  w.value()->body().sel = {0, 0};
  h.SetCurrent(&w.value()->body());
  ASSERT_TRUE(h.ExecuteText("/help/kind/kind", w.value()).ok());
  Window* out = nullptr;
  for (Window* cand : h.AllWindows()) {
    if (cand->tag().text->Utf8().find(": kind") != std::string::npos) {
      out = cand;
    }
  }
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->body().text->Utf8(), "C header\n");
}

// Undo across program writes: user edits survive a Get! via Undo history
// reset (documented behaviour: program writes clear undo).
TEST(Integration, EditUndoAcrossToolRuns) {
  PaperSession s;
  Help& h = s.help;
  auto w = h.OpenFile("/usr/rob/src/help/errs.c", "/", nullptr);
  std::string original = w.value()->body().text->Utf8();
  w.value()->body().sel = {0, 0};
  h.SetCurrent(&w.value()->body());
  h.Type("EDIT");
  ASSERT_TRUE(h.ExecuteText("Undo", w.value()).ok());
  EXPECT_EQ(w.value()->body().text->Utf8(), original);
}

}  // namespace
}  // namespace help
