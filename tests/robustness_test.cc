// Robustness / fuzz-ish tests: malformed protocol bytes, random shell
// sources, random C text, and hostile ctl writes must produce clean errors —
// never crashes, hangs, or corrupted state.
#include <gtest/gtest.h>

#include "src/cc/browser.h"
#include "src/core/help.h"
#include "src/fs/server.h"
#include "src/regexp/regexp.h"
#include "src/shell/shell.h"
#include "src/text/address.h"

namespace help {
namespace {

struct Rng {
  uint32_t seed;
  uint32_t Next() {
    seed = seed * 1664525 + 1013904223;
    return seed >> 8;
  }
};

class NinepFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NinepFuzz, RandomBytesNeverCrashServer) {
  Rng rng{static_cast<uint32_t>(GetParam()) * 2654435761u};
  Vfs vfs;
  vfs.WriteFile("/f", "data");
  NinepServer server(&vfs);
  for (int round = 0; round < 200; round++) {
    size_t len = rng.Next() % 64;
    std::string packet;
    if (rng.Next() % 2 == 0) {
      // Length-consistent prefix so it gets past the size check sometimes.
      std::string body;
      for (size_t i = 0; i < len; i++) {
        body.push_back(static_cast<char>(rng.Next()));
      }
      uint32_t total = static_cast<uint32_t>(body.size()) + 4;
      packet.push_back(static_cast<char>(total & 0xFF));
      packet.push_back(static_cast<char>((total >> 8) & 0xFF));
      packet.push_back(static_cast<char>((total >> 16) & 0xFF));
      packet.push_back(static_cast<char>((total >> 24) & 0xFF));
      packet += body;
    } else {
      for (size_t i = 0; i < len; i++) {
        packet.push_back(static_cast<char>(rng.Next()));
      }
    }
    std::string reply = server.HandleBytes(packet);
    auto decoded = DecodeFcall(reply);
    ASSERT_TRUE(decoded.ok());  // the server always answers a valid message
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NinepFuzz, ::testing::Range(1, 9));

class ShellFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ShellFuzz, RandomSourceNeverCrashes) {
  Rng rng{static_cast<uint32_t>(GetParam()) * 40503u};
  Vfs vfs;
  CommandRegistry reg;
  ProcTable procs;
  Shell shell(&vfs, &reg, &procs);
  const char kChars[] = "abc $|{}`'<>^=;#\n\t*?[]/!";
  for (int round = 0; round < 300; round++) {
    std::string src;
    size_t len = rng.Next() % 48;
    for (size_t i = 0; i < len; i++) {
      src.push_back(kChars[rng.Next() % (sizeof(kChars) - 1)]);
    }
    Env env;
    std::string out;
    std::string err;
    Io io;
    io.out = &out;
    io.err = &err;
    // Must terminate and either run or report a parse error.
    shell.Run(src, &env, "/", {}, io);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShellFuzz, ::testing::Range(1, 9));

class CFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CFuzz, RandomTokensNeverStallParser) {
  Rng rng{static_cast<uint32_t>(GetParam()) * 69069u};
  const char* kToks[] = {"int", "typedef", "struct", "x", "y", "(",  ")", "{",
                        "}",   "[",       "]",      ";", ",", "*",  "=", "42",
                        "\"s\"", "if",    "goto",   ":", "case", "enum"};
  for (int round = 0; round < 100; round++) {
    std::string src;
    size_t len = rng.Next() % 120;
    for (size_t i = 0; i < len; i++) {
      src += kToks[rng.Next() % (sizeof(kToks) / sizeof(kToks[0]))];
      src += (rng.Next() % 7 == 0) ? "\n" : " ";
    }
    CBrowser b;
    b.AddTranslationUnit(src, "fuzz.c");  // must terminate
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CFuzz, ::testing::Range(1, 9));

TEST(CtlRobustness, HostileWritesAreRejectedCleanly) {
  Help h;
  h.vfs().WriteFile("/f", "body\n");
  auto w = h.OpenFile("/f", "/", nullptr);
  std::string ctl = "/mnt/help/" + std::to_string(w.value()->id()) + "/ctl";
  for (const char* bad :
       {"select 99999999999999999999 3", "insert -1 x", "delete 1", "show",
        "select a b", "delete 9 3", "insert notanumber text", "bogus op"}) {
    Status s = h.vfs().WriteFile(ctl, bad);
    EXPECT_FALSE(s.ok()) << bad;
  }
  // State untouched.
  EXPECT_EQ(w.value()->body().text->Utf8(), "body\n");
}

TEST(CtlRobustness, HugeOffsetsClamp) {
  Help h;
  h.vfs().WriteFile("/f", "body\n");
  auto w = h.OpenFile("/f", "/", nullptr);
  std::string ctl = "/mnt/help/" + std::to_string(w.value()->id()) + "/ctl";
  ASSERT_TRUE(h.vfs().WriteFile(ctl, "select 2 400").ok());
  EXPECT_EQ(w.value()->body().sel, (Selection{2, 5}));
  ASSERT_TRUE(h.vfs().WriteFile(ctl, "insert 400 tail").ok());
  EXPECT_EQ(w.value()->body().text->Utf8(), "body\ntail");
}

TEST(AddressRobustness, JunkAddressesError) {
  Text t("line\n");
  for (const char* bad : {"-1", "1,,2", "#", "//", "$$", "1,2,3", "1,"}) {
    EXPECT_FALSE(EvalAddress(t, bad).ok()) << bad;
  }
}

TEST(RegexpRobustness, DeepNestingTerminates) {
  std::string pattern;
  for (int i = 0; i < 60; i++) {
    pattern += "(a|";
  }
  pattern += "b";
  for (int i = 0; i < 60; i++) {
    pattern += ")";
  }
  auto re = Regexp::Compile(pattern);
  ASSERT_TRUE(re.ok());
  RuneString text = RunesFromUtf8("b");
  EXPECT_TRUE(re.value().Search(text).has_value());
}

}  // namespace
}  // namespace help
