// Differential property tests for the text engine: Text (gap buffer + the
// incremental line index + undo log) is driven through thousands of
// seeded-random edits against a naive reference model — a flat vector of
// runes with scan-based line queries, the behavior the pre-index engine had.
// After EVERY op the contents, line counts, and line offsets must agree
// exactly; the line index is additionally recounted from scratch at
// intervals. Runs under ASan/UBSan and TSan (ctest label `property`).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/text/text.h"

namespace help {
namespace {

// --- Reference model: scan-based line bookkeeping ----------------------------
// These reimplement the pre-index O(n) semantics verbatim; the index must
// reproduce them bit-for-bit, including the trailing-newline invariant and
// the past-EOF clamping.

size_t RefLineCount(const std::u32string& s) {
  size_t n = 1;
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] == '\n' && i + 1 < s.size()) {
      n++;
    }
  }
  return n;
}

size_t RefLineStart(const std::u32string& s, size_t line) {
  if (line <= 1) {
    return 0;
  }
  size_t cur = 1;
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] == '\n') {
      cur++;
      if (cur == line) {
        return i + 1;
      }
    }
  }
  size_t i = s.size();
  while (i > 0 && s[i - 1] != '\n') {
    i--;
  }
  return i;
}

size_t RefLineEndAt(const std::u32string& s, size_t pos) {
  pos = std::min(pos, s.size());
  while (pos < s.size() && s[pos] != '\n') {
    pos++;
  }
  return pos;
}

size_t RefLineAt(const std::u32string& s, size_t pos) {
  pos = std::min(pos, s.size());
  size_t line = 1;
  for (size_t i = 0; i < pos; i++) {
    if (s[i] == '\n') {
      line++;
    }
  }
  return line;
}

// --- Random edit scripts ------------------------------------------------------

struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
  uint32_t Below(uint32_t n) { return n == 0 ? 0 : Next() % n; }
};

// Random rune strings: letters, newlines (so line structure churns), and
// multi-byte runes (so the byte index is exercised).
RuneString RandomRunes(Lcg& rng, size_t max_len) {
  size_t len = rng.Below(static_cast<uint32_t>(max_len + 1));
  RuneString s;
  s.reserve(len);
  for (size_t i = 0; i < len; i++) {
    uint32_t pick = rng.Below(10);
    if (pick < 2) {
      s.push_back('\n');
    } else if (pick < 3) {
      static constexpr Rune kWide[] = {0xE9, 0x4F60, 0x1F600};  // é 你 😀
      s.push_back(kWide[rng.Below(3)]);
    } else {
      s.push_back('a' + rng.Below(26));
    }
  }
  return s;
}

// The driver mirrors help's actual usage: BeginChange before every edit
// group (Type/Cut/Paste all do), so undo grouping follows gesture
// boundaries. The model's undo is snapshot-based: state at group start.
class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, TextAgreesWithScanModelOver10kOps) {
  Lcg rng(static_cast<uint32_t>(GetParam()));
  Text t;
  std::u32string model;
  std::vector<std::u32string> undo_stack;
  std::vector<std::u32string> redo_stack;
  bool group_open = false;

  auto note_edit = [&] {
    if (!group_open) {
      undo_stack.push_back(model);
      group_open = true;
    }
    redo_stack.clear();
  };

  constexpr int kOps = 10000;
  constexpr size_t kMaxDoc = 4096;
  for (int step = 0; step < kOps; step++) {
    uint32_t op = rng.Below(12);
    if (model.size() > kMaxDoc) {
      op = 5 + rng.Below(3);  // force deletes when the doc is big
    }
    if (op < 5) {
      // Insert.
      t.BeginChange();
      group_open = false;
      size_t pos = rng.Below(static_cast<uint32_t>(model.size() + 1));
      RuneString s = RandomRunes(rng, 24);
      t.Insert(pos, s);
      if (!s.empty()) {
        note_edit();
        model.insert(pos, s);
      }
    } else if (op < 8) {
      // Delete.
      t.BeginChange();
      group_open = false;
      size_t pos = rng.Below(static_cast<uint32_t>(model.size() + 2));  // may be past end
      size_t n = rng.Below(48);
      t.Delete(pos, n);
      if (n > 0 && pos < model.size()) {
        note_edit();
        model.erase(pos, std::min(n, model.size() - pos));
      }
    } else if (op < 9) {
      // Replace (one undo group: delete + insert).
      t.BeginChange();
      group_open = false;
      size_t q0 = rng.Below(static_cast<uint32_t>(model.size() + 1));
      size_t q1 = std::min(model.size(), q0 + rng.Below(32));
      RuneString s = RandomRunes(rng, 16);
      t.Replace(q0, q1, s);
      if (q1 > q0) {
        note_edit();
        model.erase(q0, q1 - q0);
      }
      if (!s.empty()) {
        note_edit();
        model.insert(q0, s);
      }
    } else if (op < 11) {
      // Undo.
      bool did = t.Undo(nullptr);
      ASSERT_EQ(did, !undo_stack.empty()) << "step " << step;
      if (did) {
        redo_stack.push_back(model);
        model = undo_stack.back();
        undo_stack.pop_back();
      }
      group_open = false;
    } else {
      // Redo.
      bool did = t.Redo(nullptr);
      ASSERT_EQ(did, !redo_stack.empty()) << "step " << step;
      if (did) {
        undo_stack.push_back(model);
        model = redo_stack.back();
        redo_stack.pop_back();
      }
      group_open = false;
    }

    // --- Full agreement after every op ---------------------------------------
    ASSERT_EQ(t.size(), model.size()) << "step " << step;
    ASSERT_EQ(t.ReadAll(), RuneString(model)) << "step " << step;
    ASSERT_EQ(t.CanUndo(), !undo_stack.empty()) << "step " << step;
    ASSERT_EQ(t.CanRedo(), !redo_stack.empty()) << "step " << step;
    ASSERT_EQ(t.LineCount(), RefLineCount(model)) << "step " << step;

    size_t pos = rng.Below(static_cast<uint32_t>(model.size() + 2));
    ASSERT_EQ(t.LineAt(pos), RefLineAt(model, pos)) << "step " << step << " pos " << pos;
    ASSERT_EQ(t.LineEndAt(pos), RefLineEndAt(model, pos))
        << "step " << step << " pos " << pos;
    size_t line = 1 + rng.Below(static_cast<uint32_t>(RefLineCount(model) + 2));
    ASSERT_EQ(t.LineStart(line), RefLineStart(model, line))
        << "step " << step << " line " << line;

    // Byte-offset view vs a full re-encode.
    std::string utf8 = t.Utf8();
    ASSERT_EQ(t.Utf8Bytes(), utf8.size()) << "step " << step;
    if (!utf8.empty()) {
      size_t boff = rng.Below(static_cast<uint32_t>(utf8.size() + 2));
      size_t bcount = rng.Below(64);
      ASSERT_EQ(t.Utf8Substr(boff, bcount),
                boff < utf8.size() ? utf8.substr(boff, bcount) : std::string())
          << "step " << step << " boff " << boff;
    }

    if (step % 512 == 0) {
      ASSERT_TRUE(t.CheckLineIndex()) << "step " << step;
    }
  }
  EXPECT_TRUE(t.CheckLineIndex());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(1, 5));

// --- Undo/redo round trip -----------------------------------------------------

// A full random edit script, then: undo everything -> byte-identical
// original; redo everything -> byte-identical final. The undo/redo step
// counts must equal the number of BeginChange groups that actually edited,
// locking in grouping boundaries.
class UndoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UndoRoundTrip, FullUndoRestoresOriginalFullRedoRestoresFinal) {
  Lcg rng(static_cast<uint32_t>(GetParam()) + 99);
  Text t("seed line one\nseed line two\nseed line three\n");
  const std::string original = t.Utf8();
  const size_t original_bytes = t.Utf8Bytes();

  int effective_groups = 0;
  for (int g = 0; g < 300; g++) {
    t.BeginChange();
    bool effective = false;
    // 1-3 edits per group, exercising grouping boundaries.
    uint32_t edits = 1 + rng.Below(3);
    for (uint32_t e = 0; e < edits; e++) {
      if (t.size() > 0 && rng.Below(3) == 0) {
        size_t pos = rng.Below(static_cast<uint32_t>(t.size()));
        size_t n = 1 + rng.Below(8);
        t.Delete(pos, n);  // pos < size and n >= 1: always effective
        effective = true;
      } else {
        size_t pos = rng.Below(static_cast<uint32_t>(t.size() + 1));
        RuneString s = RandomRunes(rng, 12);
        if (s.empty()) {
          s = U"x";
        }
        t.Insert(pos, s);
        effective = true;
      }
    }
    if (effective) {
      effective_groups++;
    }
  }
  const std::string final_state = t.Utf8();
  const size_t final_bytes = t.Utf8Bytes();

  int undone = 0;
  while (t.Undo(nullptr)) {
    undone++;
  }
  EXPECT_EQ(undone, effective_groups);
  EXPECT_FALSE(t.CanUndo());
  EXPECT_EQ(t.Utf8(), original);        // byte-identical original
  EXPECT_EQ(t.Utf8Bytes(), original_bytes);
  EXPECT_TRUE(t.CheckLineIndex());

  int redone = 0;
  while (t.Redo(nullptr)) {
    redone++;
  }
  EXPECT_EQ(redone, effective_groups);
  EXPECT_FALSE(t.CanRedo());
  EXPECT_EQ(t.Utf8(), final_state);     // byte-identical final state
  EXPECT_EQ(t.Utf8Bytes(), final_bytes);
  EXPECT_TRUE(t.CheckLineIndex());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoRoundTrip, ::testing::Range(1, 4));

// Grouping boundary: edits in one BeginChange group undo and redo as a unit.
TEST(UndoRoundTrip, GroupBoundariesSurviveRoundTrip) {
  Text t("abc");
  t.BeginChange();
  t.Insert(3, U"d");
  t.Insert(4, U"e");   // same group
  t.BeginChange();
  t.Delete(0, 1);      // own group
  EXPECT_EQ(t.Utf8(), "bcde");
  EXPECT_TRUE(t.Undo(nullptr));
  EXPECT_EQ(t.Utf8(), "abcde");  // only the delete undone
  EXPECT_TRUE(t.Undo(nullptr));
  EXPECT_EQ(t.Utf8(), "abc");    // both inserts undone together
  EXPECT_FALSE(t.Undo(nullptr));
  EXPECT_TRUE(t.Redo(nullptr));
  EXPECT_EQ(t.Utf8(), "abcde");
  EXPECT_TRUE(t.Redo(nullptr));
  EXPECT_EQ(t.Utf8(), "bcde");
  EXPECT_FALSE(t.Redo(nullptr));
}

}  // namespace
}  // namespace help
