// Clone!: multiple windows per file (a paper future-work item). Both windows
// share one body; edits appear in both, Put! cleans every tag.
#include <gtest/gtest.h>

#include "src/core/help.h"

namespace help {
namespace {

class CloneTest : public ::testing::Test {
 protected:
  CloneTest() {
    h_.vfs().MkdirAll("/src");
    h_.vfs().WriteFile("/src/f.c", "original content\n");
    auto w = h_.OpenFile("/src/f.c", "/", nullptr);
    first_ = w.value();
    EXPECT_TRUE(h_.ExecuteText("Clone!", first_).ok());
    for (Window* w2 : h_.AllWindows()) {
      if (w2 != first_ && w2->TagFilename() == "/src/f.c") {
        second_ = w2;
      }
    }
  }
  Help h_;
  Window* first_ = nullptr;
  Window* second_ = nullptr;
};

TEST_F(CloneTest, CloneSharesBody) {
  ASSERT_NE(second_, nullptr);
  EXPECT_EQ(first_->body().text, second_->body().text);
  EXPECT_NE(&first_->tag(), &second_->tag());
}

TEST_F(CloneTest, EditInOneAppearsInBoth) {
  ASSERT_NE(second_, nullptr);
  first_->body().sel = {0, 8};
  h_.SetCurrent(&first_->body());
  h_.Type("REPLACED");
  EXPECT_EQ(second_->body().text->Utf8(), "REPLACED content\n");
  // Both tags show the dirty marker.
  EXPECT_NE(first_->tag().text->Utf8().find("Put!"), std::string::npos);
  EXPECT_NE(second_->tag().text->Utf8().find("Put!"), std::string::npos);
}

TEST_F(CloneTest, PutFromEitherCleansBoth) {
  ASSERT_NE(second_, nullptr);
  first_->body().sel = {0, 0};
  h_.SetCurrent(&first_->body());
  h_.Type("x");
  ASSERT_TRUE(h_.ExecuteText("Put!", second_).ok());
  EXPECT_EQ(first_->tag().text->Utf8().find("Put!"), std::string::npos);
  EXPECT_EQ(second_->tag().text->Utf8().find("Put!"), std::string::npos);
  EXPECT_EQ(h_.vfs().ReadFile("/src/f.c").value().substr(0, 1), "x");
}

TEST_F(CloneTest, IndependentSelectionsAndScrolling) {
  ASSERT_NE(second_, nullptr);
  first_->body().sel = {0, 3};
  second_->body().sel = {4, 8};
  EXPECT_NE(first_->body().sel, second_->body().sel);
}

TEST_F(CloneTest, CloseOneKeepsTheOther) {
  ASSERT_NE(second_, nullptr);
  h_.CloseWindow(second_);
  EXPECT_EQ(h_.WindowForFile("/src/f.c"), first_);
  first_->body().sel = {0, 0};
  h_.SetCurrent(&first_->body());
  h_.Type("still alive ");
  EXPECT_EQ(first_->body().text->Utf8().substr(0, 12), "still alive ");
}

TEST_F(CloneTest, ClonedWindowServesOwnFiles) {
  ASSERT_NE(second_, nullptr);
  std::string body_path = "/mnt/help/" + std::to_string(second_->id()) + "/body";
  EXPECT_EQ(h_.vfs().ReadFile(body_path).value(), "original content\n");
}

}  // namespace
}  // namespace help
