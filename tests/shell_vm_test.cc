// Bytecode pipeline tests: the compiler's output (disassembly), the
// process-wide compiled-script cache (hits, misses, invalidation, LRU,
// error handling), the VM/tree-walker toggle, and the obs counters.
#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/shell/compile.h"
#include "src/shell/coreutils.h"
#include "src/shell/mk.h"
#include "src/shell/scriptcache.h"
#include "src/shell/shell.h"

namespace help {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name)->value();
}

class ShellVmTest : public ::testing::Test {
 protected:
  ShellVmTest() : shell_(&vfs_, &registry_, &procs_) {
    RegisterCoreutils(&vfs_, &registry_);
    RegisterMk(&vfs_, &registry_);
    ShellScriptCache::Global().Clear();
    Shell::SetVmEnabled(true);
  }
  ~ShellVmTest() override { Shell::SetVmEnabled(true); }

  std::string Run(std::string_view src, int* status = nullptr) {
    std::string out;
    err_.clear();
    Io io;
    io.out = &out;
    io.err = &err_;
    auto r = shell_.Run(src, &env_, "/", {}, io);
    EXPECT_TRUE(r.ok()) << r.message() << " running: " << src;
    if (status != nullptr) {
      *status = r.ok() ? r.value() : -1;
    }
    return out;
  }

  Vfs vfs_;
  CommandRegistry registry_;
  ProcTable procs_;
  Env env_;
  Shell shell_;
  std::string err_;
};

TEST_F(ShellVmTest, DisassemblerListsLoweredOps) {
  auto prog = CompileShellSource("x=1 echo hello $x | wc > /tmp/out");
  ASSERT_TRUE(prog.ok()) << prog.message();
  std::string listing = prog.value()->Disassemble();
  EXPECT_NE(listing.find("chunk 0:"), std::string::npos) << listing;
  EXPECT_NE(listing.find("push-lit"), std::string::npos) << listing;
  EXPECT_NE(listing.find("push-var       \"x\""), std::string::npos) << listing;
  EXPECT_NE(listing.find("assign-scoped  \"x\""), std::string::npos) << listing;
  EXPECT_NE(listing.find("run-simple"), std::string::npos) << listing;
  EXPECT_NE(listing.find("pipeline-begin"), std::string::npos) << listing;
  EXPECT_NE(listing.find("stage-begin"), std::string::npos) << listing;
  EXPECT_NE(listing.find("redir"), std::string::npos) << listing;
  EXPECT_NE(listing.find("pipeline-end"), std::string::npos) << listing;
  EXPECT_GT(prog.value()->TotalOps(), 10u);
}

TEST_F(ShellVmTest, ControlFlowCompilesToSubChunks) {
  auto prog = CompileShellSource("if(true){echo a} if not {echo b}\nfor(i in x y){echo $i}");
  ASSERT_TRUE(prog.ok()) << prog.message();
  EXPECT_GT(prog.value()->chunk_count(), 4u);  // root + cond + 3 bodies
  std::string listing = prog.value()->Disassemble();
  EXPECT_NE(listing.find("if "), std::string::npos) << listing;
  EXPECT_NE(listing.find("if-not"), std::string::npos) << listing;
  EXPECT_NE(listing.find("for"), std::string::npos) << listing;
}

TEST_F(ShellVmTest, SourceCacheHitsOnRepeatedRun) {
  uint64_t miss0 = CounterValue("shell.compile_cache_miss");
  uint64_t hit0 = CounterValue("shell.compile_cache_hit");
  EXPECT_EQ(Run("echo cached script one"), "cached script one\n");
  EXPECT_EQ(CounterValue("shell.compile_cache_miss"), miss0 + 1);
  EXPECT_EQ(Run("echo cached script one"), "cached script one\n");
  EXPECT_EQ(Run("echo cached script one"), "cached script one\n");
  EXPECT_EQ(CounterValue("shell.compile_cache_miss"), miss0 + 1);  // no recompile
  EXPECT_GE(CounterValue("shell.compile_cache_hit"), hit0 + 2);
}

TEST_F(ShellVmTest, FileCacheValidatesSignatureAndFallsBackToSourceLayer) {
  ASSERT_TRUE(vfs_.WriteFile("/bin/tool", "echo version one\n").ok());
  auto p1 = ShellScriptCache::Global().GetFile(vfs_, "/bin/tool");
  ASSERT_TRUE(p1.ok());
  auto p2 = ShellScriptCache::Global().GetFile(vfs_, "/bin/tool");
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value().get(), p2.value().get());  // signature hit, same program

  // An edit invalidates the file entry and compiles the new text.
  ASSERT_TRUE(vfs_.WriteFile("/bin/tool", "echo version two\n").ok());
  auto p3 = ShellScriptCache::Global().GetFile(vfs_, "/bin/tool");
  ASSERT_TRUE(p3.ok());
  EXPECT_NE(p3.value().get(), p1.value().get());

  // Restoring the old contents bumps the signature again, but the
  // content-addressed source layer still holds the original program.
  ASSERT_TRUE(vfs_.WriteFile("/bin/tool", "echo version one\n").ok());
  auto p4 = ShellScriptCache::Global().GetFile(vfs_, "/bin/tool");
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(p4.value().get(), p1.value().get());
}

TEST_F(ShellVmTest, FileKeysDoNotAliasAcrossNamespaces) {
  // Two fresh namespaces produce identical qids and mtimes for different
  // scripts; the vfs id in the file key keeps their entries apart.
  Vfs a;
  Vfs b;
  ASSERT_TRUE(a.WriteFile("/t", "echo from a\n").ok());
  ASSERT_TRUE(b.WriteFile("/t", "echo from b\n").ok());
  auto pa = ShellScriptCache::Global().GetFile(a, "/t");
  auto pb = ShellScriptCache::Global().GetFile(b, "/t");
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_NE(pa.value().get(), pb.value().get());
}

TEST_F(ShellVmTest, ErrorsAreNeverCached) {
  uint64_t miss0 = CounterValue("shell.compile_cache_miss");
  auto r1 = ShellScriptCache::Global().Get("echo 'unterminated");
  EXPECT_FALSE(r1.ok());
  auto r2 = ShellScriptCache::Global().Get("echo 'unterminated");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r1.message(), r2.message());
  EXPECT_EQ(CounterValue("shell.compile_cache_miss"), miss0);  // never recorded
}

TEST_F(ShellVmTest, LruEvictsOldestEntry) {
  ShellScriptCache::Global().Clear();
  for (size_t i = 0; i < ShellScriptCache::kCapacity + 8; i++) {
    auto r = ShellScriptCache::Global().Get("echo unique-" + std::to_string(i));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(ShellScriptCache::Global().size(), ShellScriptCache::kCapacity);
  // The first entries fell off; re-requesting one recompiles it.
  uint64_t miss0 = CounterValue("shell.compile_cache_miss");
  ASSERT_TRUE(ShellScriptCache::Global().Get("echo unique-0").ok());
  EXPECT_EQ(CounterValue("shell.compile_cache_miss"), miss0 + 1);
  // The most recent entry is still resident.
  uint64_t hit0 = CounterValue("shell.compile_cache_hit");
  ASSERT_TRUE(
      ShellScriptCache::Global()
          .Get("echo unique-" + std::to_string(ShellScriptCache::kCapacity + 7))
          .ok());
  EXPECT_EQ(CounterValue("shell.compile_cache_hit"), hit0 + 1);
}

TEST_F(ShellVmTest, VmOpsCounterAdvances) {
  uint64_t ops0 = CounterValue("shell.vm_ops");
  Run("for(i in a b c){echo $i} | wc");
  EXPECT_GT(CounterValue("shell.vm_ops"), ops0);
}

TEST_F(ShellVmTest, ToggleSelectsEvaluator) {
  EXPECT_TRUE(Shell::VmEnabled());
  uint64_t ops0 = CounterValue("shell.vm_ops");
  Shell::SetVmEnabled(false);
  EXPECT_FALSE(Shell::VmEnabled());
  EXPECT_EQ(Run("echo via tree walker"), "via tree walker\n");
  EXPECT_EQ(CounterValue("shell.vm_ops"), ops0);  // tree-walker runs no ops
  Shell::SetVmEnabled(true);
  EXPECT_EQ(Run("echo via vm"), "via vm\n");
  EXPECT_GT(CounterValue("shell.vm_ops"), ops0);
}

TEST_F(ShellVmTest, FunctionDefinedByTreeWalkerRunsOnVm) {
  // A function defined while the VM was off lives in the table as a bare
  // AST; calling it with the VM on goes through the foreign-fn compile path.
  Shell::SetVmEnabled(false);
  Run("fn greet { echo hi $1 }");
  Shell::SetVmEnabled(true);
  EXPECT_EQ(Run("greet rob; greet world"), "hi rob\nhi world\n");
}

TEST_F(ShellVmTest, EvaluatorsAgreeOnCoreScripts) {
  const char* kScripts[] = {
      "echo a b; echo c",
      "x=1 y=2 echo $x$y; echo $x",
      "x=(p q r); echo $#x $x(2)",  // may be a parse error — must match
      "if(~ a a){echo yes} if not {echo no}",
      "for(i in 1 2 3){echo n$i} | wc",
      "w=go; while(! ~ $w done){echo tick; w=done}",
      "switch(b){case a\necho first\ncase b\necho second}",
      "fn f { echo f$1 }; f x; f y",
      "echo `{echo nested `{echo deep}}",
      "cat < /bin/true | wc > /count; cat /count",
      "echo one > /f; echo two >> /f; cat /f",
      "echo $status; false; echo $status; true; echo $status",
      "ls /bin | grep true",
      "echo a'b c'd",
      "missingcmd; echo $status",
      "eval 'echo evaluated'",
      "exit 3; echo unreachable",
  };
  for (const char* src : kScripts) {
    struct World {
      Vfs vfs;
      CommandRegistry registry;
      ProcTable procs;
      Env env;
      std::string out, err;
    };
    std::string results[2];
    for (int mode = 0; mode < 2; mode++) {
      Shell::SetVmEnabled(mode == 0);
      World w;
      RegisterCoreutils(&w.vfs, &w.registry);
      Shell sh(&w.vfs, &w.registry, &w.procs);
      Io io;
      io.out = &w.out;
      io.err = &w.err;
      auto r = sh.Run(src, &w.env, "/", {}, io);
      results[mode] = "ok=" + std::string(r.ok() ? "1" : "0") +
                      " msg=" + r.message() +
                      " status=" + std::to_string(r.ok() ? r.value() : -1) +
                      "\nout:" + w.out + "\nerr:" + w.err;
    }
    EXPECT_EQ(results[0], results[1]) << "diverged on: " << src;
    Shell::SetVmEnabled(true);
  }
}

TEST_F(ShellVmTest, MkRecipesRouteThroughCompileCache) {
  ASSERT_TRUE(vfs_
                  .WriteFile("/mkfile",
                             "all: a b\n"
                             "a:\n\techo building a > /a.out\n"
                             "b:\n\techo building b > /b.out\n")
                  .ok());
  uint64_t recipes0 = CounterValue("shell.mk_recipe");
  Run("mk all");
  EXPECT_EQ(CounterValue("shell.mk_recipe"), recipes0 + 2);

  // Re-running after removing the outputs replays the same recipe text: the
  // compile cache serves hits and nothing recompiles.
  ASSERT_TRUE(vfs_.Remove("/a.out").ok());
  ASSERT_TRUE(vfs_.Remove("/b.out").ok());
  uint64_t miss0 = CounterValue("shell.compile_cache_miss");
  uint64_t hit0 = CounterValue("shell.compile_cache_hit");
  Run("mk all");
  EXPECT_EQ(CounterValue("shell.mk_recipe"), recipes0 + 4);
  EXPECT_GE(CounterValue("shell.compile_cache_hit"), hit0 + 2);
  EXPECT_EQ(CounterValue("shell.compile_cache_miss"), miss0);
}

TEST_F(ShellVmTest, DepthLimitAndErrorOrderingMatchTreeWalker) {
  // A self-recursive script trips the recursion guard identically under both
  // evaluators (the VM checks depth before consulting the cache).
  ASSERT_TRUE(vfs_.WriteFile("/bin/loop", "loop\n").ok());
  for (int mode = 0; mode < 2; mode++) {
    Shell::SetVmEnabled(mode == 0);
    std::string out, err;
    Io io;
    io.out = &out;
    io.err = &err;
    Env env;
    auto r = shell_.Run("loop", &env, "/", {}, io);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 1) << "mode " << mode;
    EXPECT_NE(err.find("rc: script recursion too deep"), std::string::npos)
        << "mode " << mode << " err: " << err;
  }
  Shell::SetVmEnabled(true);
}

}  // namespace
}  // namespace help
