// Socket soak: the server_property_test oracle pushed through the real
// transport. 64 concurrent socket clients — each its own connection, its own
// Session — race range Treads against one appender, over Unix-domain sockets
// through the epoll listener and the worker pool. The body only ever grows
// by appending a deterministic byte pattern, so every Rread byte must match
// the pattern at its absolute offset no matter how the event loop interleaves
// connections; one disagreeing byte is a torn read somewhere between the
// socket and the gap buffer.
//
// Runs under the `property` ctest label. The TSan CI job is the other half
// of the contract: loop thread, worker pool, and 65 client threads with no
// data races.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"
#include "src/wm/wm.h"

namespace help {
namespace {

char PatternByte(uint64_t i) {
  return i % 64 == 63 ? '\n' : static_cast<char>('a' + (i % 26));
}

std::string PatternChunk(uint64_t start, size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; i++) {
    s.push_back(PatternByte(start + i));
  }
  return s;
}

struct Lcg {
  uint32_t state;
  explicit Lcg(uint32_t seed) : state(seed * 2654435761u + 1) {}
  uint32_t Next() {
    state = state * 1664525 + 1013904223;
    return state >> 8;
  }
};

TEST(TransportSoak, SixtyFourSocketClientsReadConsistentlyUnderAppends) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();

  NinepListener::Options lopt;
  lopt.workers = 4;
  NinepListener lis(&srv, lopt);
  std::string path = StrFormat("soak.%d.sock", getpid());
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());
  RaiseFdLimit(4096);

  // The appender is a socket client too: its window and seeded body prefix
  // are what everyone else reads.
  auto wtr = SocketTransport::ConnectUnix(path);
  ASSERT_TRUE(wtr.ok());
  NinepClient writer(wtr.value()->AsTransport());
  ASSERT_TRUE(writer.Connect("writer").ok());
  auto ctl = writer.ReadFile("/mnt/help/new/ctl");
  ASSERT_TRUE(ctl.ok());
  std::string base = "/mnt/help/" + std::string(TrimSpace(ctl.value()));

  constexpr uint64_t kSeedBytes = 4096;  // readers stay inside this prefix
  constexpr int kAppends = 150;
  constexpr size_t kAppendChunk = 128;
  ASSERT_TRUE(writer.WriteFile(base + "/bodyapp", PatternChunk(0, kSeedBytes)).ok());
  auto app = writer.WalkFid(base + "/bodyapp");
  ASSERT_TRUE(app.ok());
  ASSERT_TRUE(writer.OpenFid(app.value(), kOwrite).ok());

  constexpr int kClients = 64;
  constexpr int kReadsPerClient = 60;
  std::atomic<uint64_t> connect_failures{0};
  std::atomic<uint64_t> read_failures{0};
  std::atomic<uint64_t> torn_reads{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int r = 0; r < kClients; r++) {
    clients.emplace_back([&, r] {
      auto tr = SocketTransport::ConnectUnix(path);
      if (!tr.ok()) {
        connect_failures++;
        return;
      }
      NinepClient c(tr.value()->AsTransport());
      if (!c.Connect(StrFormat("soak%d", r)).ok()) {
        connect_failures++;
        return;
      }
      auto body = c.WalkFid(base + "/body");
      if (!body.ok() || !c.OpenFid(body.value(), kOread).ok()) {
        connect_failures++;
        return;
      }
      Lcg rng(static_cast<uint32_t>(r) + 17);
      for (int i = 0; i < kReadsPerClient; i++) {
        uint64_t off = rng.Next() % kSeedBytes;
        auto d = c.ReadFid(body.value(), off, 256);
        if (!d.ok()) {
          read_failures++;
          continue;
        }
        const std::string& data = d.value();
        for (size_t j = 0; j < data.size(); j++) {
          if (data[j] != PatternByte(off + j)) {
            torn_reads++;
            break;
          }
        }
      }
      c.Clunk(body.value());
      // Leaving scope closes the socket; the listener tears the session down.
    });
  }

  uint64_t written = kSeedBytes;
  for (int i = 0; i < kAppends; i++) {
    auto n = writer.WriteFid(app.value(), 0, PatternChunk(written, kAppendChunk));
    ASSERT_TRUE(n.ok());
    written += kAppendChunk;
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(connect_failures.load(), 0u);
  EXPECT_EQ(read_failures.load(), 0u);
  EXPECT_EQ(torn_reads.load(), 0u);

  // Quiescent checks, as in the in-process property suite: the body is the
  // pattern prefix of its length, the line index survived, and the shared
  // read path really ran (the property is vacuous when serialized).
  auto all = writer.ReadFile(base + "/body");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), written);
  for (uint64_t i = 0; i < written; i++) {
    ASSERT_EQ(all.value()[i], PatternByte(i)) << "at offset " << i;
  }
  for (Window* w : h.AllWindows()) {
    EXPECT_TRUE(w->body().text->CheckLineIndex());
  }
  EXPECT_GT(srv.metrics().shared_reads(), 0u);
  EXPECT_GE(srv.metrics().net_accepts(), static_cast<uint64_t>(kClients) + 1);
  writer.Clunk(app.value());

  // Every client socket is gone; the listener must converge to one live
  // connection (the writer's) with no leaked sessions.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         (lis.active_conns() != 1 || srv.session_count() != 1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(lis.active_conns(), 1u);
  EXPECT_EQ(srv.session_count(), 1u);
  lis.Stop();
  EXPECT_EQ(srv.session_count(), 0u);
}

}  // namespace
}  // namespace help
