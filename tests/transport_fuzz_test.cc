// Wire-level frame fuzzing: the transport battery's hostile half. Seeded
// deterministic corruption — truncated frames, length fields that lie in
// both directions, msize violations, bit flips, garbage injection, and pure
// noise — is thrown at a live listener. The server may hang up on any of it
// (that is the correct response); what it must never do is crash, leak a
// session, or deadlock. Run under the HELP_SANITIZE matrix, ASan/UBSan make
// "never crash" mean "never touches freed or uninitialized memory" too.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/help.h"
#include "src/fs/listener.h"
#include "src/fs/server.h"
#include "src/fs/transport.h"

namespace help {
namespace {

// Deterministic PRNG (same policy as the property suites: no rand(), no
// nondeterministic seeds — a failure reproduces from the case number alone).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed * 2862933555777941757ULL + 3037000493ULL) {}
  uint32_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state_ >> 33);
  }
  uint32_t Below(uint32_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

std::string WellFormedStream(Lcg& rng) {
  // A plausible session: version, attach, then a few random T-messages with
  // random fids/tags — legal framing, arbitrary semantics.
  std::string out;
  Fcall tv;
  tv.type = MsgType::kTversion;
  tv.tag = 1;
  tv.msize = kDefaultMsize;
  tv.version = "9P.help";
  out += EncodeFcall(tv);
  Fcall ta;
  ta.type = MsgType::kTattach;
  ta.tag = 1;
  ta.fid = 0;
  ta.uname = "fuzz";
  out += EncodeFcall(ta);
  int n = 2 + rng.Below(6);
  for (int i = 0; i < n; i++) {
    Fcall t;
    t.tag = static_cast<uint16_t>(2 + i);
    t.fid = rng.Below(4);
    switch (rng.Below(5)) {
      case 0:
        t.type = MsgType::kTwalk;
        t.newfid = 1 + rng.Below(8);
        t.wname = {"mnt", "help"};
        break;
      case 1:
        t.type = MsgType::kTopen;
        t.mode = static_cast<uint8_t>(rng.Below(4));
        break;
      case 2:
        t.type = MsgType::kTread;
        t.offset = rng.Below(1 << 20);
        t.count = rng.Below(kDefaultMsize);
        break;
      case 3:
        t.type = MsgType::kTstat;
        break;
      default:
        t.type = MsgType::kTclunk;
        break;
    }
    out += EncodeFcall(t);
  }
  return out;
}

// One corruption strategy per case, chosen by the seed.
std::string Corrupt(std::string stream, Lcg& rng) {
  switch (rng.Below(6)) {
    case 0: {  // truncate mid-frame
      if (!stream.empty()) {
        stream.resize(rng.Below(static_cast<uint32_t>(stream.size())));
      }
      return stream;
    }
    case 1: {  // length field lies small (runt) at a random frame boundary
      if (stream.size() >= 4) {
        size_t at = rng.Below(static_cast<uint32_t>(stream.size() - 3));
        uint32_t lie = rng.Below(kMinFrameSize);
        for (int i = 0; i < 4; i++) {
          stream[at + i] = static_cast<char>((lie >> (8 * i)) & 0xFF);
        }
      }
      return stream;
    }
    case 2: {  // length field lies big: msize violation / memory-bomb claim
      if (stream.size() >= 4) {
        uint32_t lie = kMaxFrameSize + 1 + rng.Below(1u << 28);
        for (int i = 0; i < 4; i++) {
          stream[i] = static_cast<char>((lie >> (8 * i)) & 0xFF);
        }
      }
      return stream;
    }
    case 3: {  // random bit flips (framing may survive; payload is garbage)
      int flips = 1 + rng.Below(16);
      for (int i = 0; i < flips && !stream.empty(); i++) {
        size_t at = rng.Below(static_cast<uint32_t>(stream.size()));
        stream[at] = static_cast<char>(stream[at] ^ (1 << rng.Below(8)));
      }
      return stream;
    }
    case 4: {  // garbage inserted between two legal frames
      std::string noise;
      int n = 1 + rng.Below(64);
      for (int i = 0; i < n; i++) {
        noise += static_cast<char>(rng.Below(256));
      }
      size_t at = rng.Below(static_cast<uint32_t>(stream.size() + 1));
      return stream.substr(0, at) + noise + stream.substr(at);
    }
    default: {  // pure noise, no legal structure at all
      std::string noise;
      int n = 8 + rng.Below(512);
      for (int i = 0; i < n; i++) {
        noise += static_cast<char>(rng.Below(256));
      }
      return noise;
    }
  }
}

TEST(TransportFuzz, HostileStreamsNeverCrashLeakOrDeadlock) {
  Help::Options opt;
  opt.install_userland = false;
  Help h(opt);
  NinepServer& srv = h.ninep();
  size_t sessions0 = srv.session_count();

  NinepListener::Options lopt;
  lopt.workers = 2;
  NinepListener lis(&srv, lopt);
  std::string path = StrFormat("fuzz.%d.sock", getpid());
  ASSERT_TRUE(lis.ListenUnix(path).ok());
  ASSERT_TRUE(lis.Start().ok());

  constexpr int kCases = 120;
  for (int seed = 0; seed < kCases; seed++) {
    Lcg rng(seed + 1);
    std::string hostile = Corrupt(WellFormedStream(rng), rng);

    auto fd = DialUnix(path);
    ASSERT_TRUE(fd.ok()) << "case " << seed << ": " << fd.message();
    // Best-effort write: the server may hang up mid-stream (that's the
    // policy), so a failed send is a pass, not an error. The half-close
    // tells the server no more is coming, so well-framed garbage ends in a
    // prompt EOF teardown instead of a drain timeout.
    (void)WriteFull(fd.value(), hostile);
    shutdown(fd.value(), SHUT_WR);

    // Drain whatever the server says until it hangs up. The bounded timeout
    // turns a deadlocked server into a test failure instead of a hung suite.
    struct timeval tv = {2, 0};
    setsockopt(fd.value(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[4096];
    while (recv(fd.value(), buf, sizeof(buf), 0) > 0) {
    }
    close(fd.value());

    // Every 16 cases, a well-behaved client proves the server still serves —
    // a silent wedge would otherwise hide until the end.
    if (seed % 16 == 15) {
      auto tr = SocketTransport::ConnectUnix(path);
      ASSERT_TRUE(tr.ok()) << "case " << seed;
      NinepClient probe(tr.value()->AsTransport());
      ASSERT_TRUE(probe.Connect("probe").ok()) << "case " << seed;
      auto idx = probe.ReadFile("/mnt/help/index");
      ASSERT_TRUE(idx.ok()) << "case " << seed << ": " << idx.message();
    }
  }

  // No leaked sessions: once every hostile connection is gone, the session
  // table must return to its baseline (poll: teardown is asynchronous).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         (srv.session_count() != sessions0 || lis.active_conns() != 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(srv.session_count(), sessions0);
  EXPECT_EQ(lis.active_conns(), 0u);
  lis.Stop();
}

}  // namespace
}  // namespace help
